"""Serializable jammer-tournament (arena) specifications.

An arena file looks like::

    {
      "name": "arena-small",
      "description": "2 jammers x 1 pattern x 2 hop ranges",
      "config": {"payload_bytes": 4, "seed": 7},
      "jammers": {
        "none": {"type": "none"},
        "reactive": {"type": "reactive", "reaction_samples": 4096,
                     "initial_bandwidth": 10000000.0}
      },
      "patterns": ["linear"],
      "hop_ranges": [1, 7],
      "snr_db": 15.0,
      "sjr_db": -8.0,
      "packets": 6,
      "seed": 0
    }

The tournament grid is the cross product **jammer strategy x hop pattern
x hop range**.  A hop-range entry ``k`` keeps the ``k`` *widest*
bandwidths of the base config's set in play (for the paper's octave set,
hop range 2^(k-1)); ``k = 1`` pins the link to the widest bandwidth —
the static-band / DSSS baseline every adaptive attacker is measured
against.  Jammer specs inherit the config's sample rate through the
registry, exactly as scenario files do.

Validation failures raise :class:`ArenaError` naming the offending field
(``"jammers['foo']: ..."`` style).  Cells are enumerated jammers-sorted-
by-label x patterns x hop ranges, so the cell order — and with it the
checkpoint index space — is a deterministic function of the spec content,
not of JSON key order.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from typing import Any

from repro.core.config import BHSSConfig
from repro.hopping.bands import BandwidthSet
from repro.hopping.patterns import PATTERN_NAMES
from repro.jamming.base import Jammer
from repro.jamming.registry import jammer_from_spec

__all__ = ["ArenaError", "ArenaSpec", "NO_JAMMER"]

#: the jammer spec meaning "the unjammed baseline column"
NO_JAMMER: dict[str, Any] = {"type": "none"}


class ArenaError(ValueError):
    """An arena spec failed validation; the message names the field."""


def _require_int(value: object, path: str, minimum: int | None = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ArenaError(f"{path}: expected an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise ArenaError(f"{path}: must be >= {minimum}, got {value}")
    return int(value)


def _require_number(value: object, path: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ArenaError(f"{path}: expected a number, got {value!r}")
    return float(value)


@dataclass(frozen=True)
class ArenaSpec:
    """A jammer-strategy x hop-pattern x hop-range tournament grid.

    Attributes
    ----------
    name:
        Identifier used in reports, file names and cache keys.
    config:
        Base link configuration; every cell derives from it by overriding
        the pattern and restricting the bandwidth set to the cell's hop
        range.
    jammers:
        Label -> registry jammer spec.  Stored sorted by label; include a
        ``{"type": "none"}`` entry to give the jammer-advantage metric
        its unjammed baseline.
    patterns:
        Hop patterns in play (named: linear/exponential/parabolic).
    hop_ranges:
        Band counts in play: entry ``k`` hops over the ``k`` widest
        bandwidths of the base set (``1`` = static band, no hopping).
    snr_db, sjr_db:
        The common operating point of every cell — equal SJR across
        cells is what makes the resilience matrix comparable.
    packets:
        Packet budget per cell.
    seed:
        Run seed (root of the per-packet RNG substreams) shared by every
        cell, so cells differ only in configuration, never in noise.
    description:
        Free-text note carried through the JSON file.
    """

    name: str
    config: BHSSConfig = field(default_factory=BHSSConfig.paper_default)
    jammers: tuple[tuple[str, dict], ...] = (("none", NO_JAMMER),)
    patterns: tuple[str, ...] = ("linear",)
    hop_ranges: tuple[int, ...] = (1, 7)
    snr_db: float = 15.0
    sjr_db: float = -10.0
    packets: int = 8
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ArenaError("name: must be a non-empty string")
        if not isinstance(self.config, BHSSConfig):
            raise ArenaError("config: must be a BHSSConfig (use from_dict for specs)")
        jammers = tuple(self.jammers)
        if not jammers:
            raise ArenaError("jammers: at least one jammer is required")
        labels = []
        cleaned = []
        for entry in jammers:
            if not (isinstance(entry, tuple) and len(entry) == 2):
                raise ArenaError("jammers: entries must be (label, spec) pairs")
            label, spec = entry
            if not isinstance(label, str) or not label:
                raise ArenaError("jammers: labels must be non-empty strings")
            if not isinstance(spec, dict):
                raise ArenaError(f"jammers[{label!r}]: must be a registry spec mapping")
            labels.append(label)
            cleaned.append((label, dict(spec)))
        if len(set(labels)) != len(labels):
            dupes = sorted({n for n in labels if labels.count(n) > 1})
            raise ArenaError(f"jammers: duplicate label(s): {dupes}")
        object.__setattr__(self, "jammers", tuple(sorted(cleaned, key=lambda kv: kv[0])))
        patterns = tuple(self.patterns)
        if not patterns:
            raise ArenaError("patterns: at least one pattern is required")
        for p in patterns:
            if not isinstance(p, str) or p.lower() not in PATTERN_NAMES:
                raise ArenaError(
                    f"patterns: {p!r} is not a named pattern; use one of {PATTERN_NAMES}"
                )
        if len(set(patterns)) != len(patterns):
            raise ArenaError("patterns: entries must be distinct")
        object.__setattr__(self, "patterns", tuple(p.lower() for p in patterns))
        ranges = tuple(self.hop_ranges)
        if not ranges:
            raise ArenaError("hop_ranges: at least one entry is required")
        limit = len(self.config.bandwidth_set)
        for k in ranges:
            _require_int(k, "hop_ranges", minimum=1)
            if k > limit:
                raise ArenaError(
                    f"hop_ranges: {k} exceeds the {limit}-bandwidth base set"
                )
        if len(set(ranges)) != len(ranges):
            raise ArenaError("hop_ranges: entries must be distinct")
        object.__setattr__(self, "hop_ranges", tuple(int(k) for k in ranges))
        object.__setattr__(self, "snr_db", _require_number(self.snr_db, "snr_db"))
        object.__setattr__(self, "sjr_db", _require_number(self.sjr_db, "sjr_db"))
        _require_int(self.packets, "packets", minimum=1)
        _require_int(self.seed, "seed")
        if not isinstance(self.description, str):
            raise ArenaError("description: must be a string")

    # -- grid enumeration -----------------------------------------------------

    def cells(self) -> list[tuple[str, dict, str, int]]:
        """Every ``(jammer_label, jammer_spec, pattern, num_bands)`` cell.

        The order — jammers sorted by label, then patterns, then hop
        ranges, each in spec order — indexes the checkpoint space, so it
        depends only on the spec content.
        """
        return [
            (label, dict(spec), pattern, num_bands)
            for label, spec in self.jammers
            for pattern in self.patterns
            for num_bands in self.hop_ranges
        ]

    @property
    def num_cells(self) -> int:
        """Grid size: jammers x patterns x hop ranges."""
        return len(self.jammers) * len(self.patterns) * len(self.hop_ranges)

    @property
    def jammer_labels(self) -> tuple[str, ...]:
        """Jammer column labels, sorted."""
        return tuple(label for label, _ in self.jammers)

    @property
    def baseline_label(self) -> str | None:
        """The unjammed column's label (first ``"none"``-type jammer)."""
        for label, spec in self.jammers:
            if str(spec.get("type", "")).lower() == "none":
                return label
        return None

    def cell_config(self, pattern: str, num_bands: int) -> BHSSConfig:
        """The link configuration of one ``(pattern, num_bands)`` cell.

        Keeps the ``num_bands`` widest bandwidths of the base set;
        ``num_bands = 1`` pins the link to the widest bandwidth (hopping
        disabled — the static-band baseline).
        """
        num_bands = _require_int(num_bands, "num_bands", minimum=1)
        base = self.config.bandwidth_set
        if num_bands > len(base):
            raise ArenaError(f"num_bands: {num_bands} exceeds the {len(base)}-bandwidth base set")
        widest = tuple(sorted(base.bandwidths, reverse=True)[:num_bands])
        subset = BandwidthSet(widest, base.sample_rate)
        if num_bands == 1:
            return replace(
                self.config,
                bandwidth_set=subset,
                pattern="linear",
                fixed_bandwidth=float(widest[0]),
            )
        return replace(
            self.config, bandwidth_set=subset, pattern=pattern, fixed_bandwidth=None
        )

    def build_cell(self, index: int) -> tuple[BHSSConfig, Jammer, str, str, int]:
        """Build cell ``index``: ``(config, jammer, label, pattern, num_bands)``."""
        cells = self.cells()
        if not 0 <= index < len(cells):
            raise ArenaError(f"cell index {index} outside 0..{len(cells) - 1}")
        label, jspec, pattern, num_bands = cells[index]
        config = self.cell_config(pattern, num_bands)
        try:
            jammer = jammer_from_spec(jspec, sample_rate=config.sample_rate)
        except ValueError as exc:
            raise ArenaError(f"jammers[{label!r}]: {exc}") from None
        return config, jammer, label, pattern, num_bands

    def validate(self) -> "ArenaSpec":
        """Deep-check every cell (configs + jammer specs); returns self."""
        for index in range(self.num_cells):
            self.build_cell(index)
        return self

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """Lossless JSON-able spec; :meth:`from_dict` inverts it."""
        out: dict[str, Any] = {
            "name": self.name,
            "config": self.config.to_dict(),
            "jammers": {label: dict(spec) for label, spec in self.jammers},
            "patterns": list(self.patterns),
            "hop_ranges": list(self.hop_ranges),
            "snr_db": float(self.snr_db),
            "sjr_db": float(self.sjr_db),
            "packets": int(self.packets),
            "seed": int(self.seed),
        }
        if self.description:
            out["description"] = self.description
        return out

    @classmethod
    def from_dict(cls, data: object, source: str | None = None) -> "ArenaSpec":
        """Rebuild and validate an arena spec from :meth:`to_dict` output.

        ``source`` (e.g. a file path) prefixes error messages.  Every
        cell is deep-validated, so a bad jammer field fails here, not
        mid-tournament.
        """
        prefix = f"{source}: " if source else ""
        try:
            if not isinstance(data, dict):
                raise ArenaError(f"arena spec must be a mapping, got {type(data).__name__}")
            known = {
                "name", "description", "config", "jammers", "patterns",
                "hop_ranges", "snr_db", "sjr_db", "packets", "seed",
            }
            unknown = set(data) - known
            if unknown:
                raise ArenaError(f"unknown arena field(s): {sorted(unknown)}")
            if "name" not in data:
                raise ArenaError("name: field is required")
            try:
                config = BHSSConfig.from_dict(data.get("config", {}))
            except ValueError as exc:
                raise ArenaError(f"config: {exc}") from None
            raw_jammers = data.get("jammers")
            if not isinstance(raw_jammers, dict) or not raw_jammers:
                raise ArenaError("jammers: must be a non-empty {label: spec} mapping")
            jammers = []
            for label, spec in raw_jammers.items():
                if not isinstance(label, str) or not label:
                    raise ArenaError("jammers: labels must be non-empty strings")
                if not isinstance(spec, dict):
                    raise ArenaError(f"jammers[{label!r}]: must be a registry spec mapping")
                jammers.append((label, dict(spec)))
            kwargs: dict[str, Any] = {
                "name": data["name"],
                "config": config,
                "jammers": tuple(jammers),
                "description": data.get("description", ""),
            }
            for key in ("snr_db", "sjr_db", "packets", "seed"):
                if key in data:
                    kwargs[key] = data[key]
            for key in ("patterns", "hop_ranges"):
                if key in data:
                    value = data[key]
                    if not isinstance(value, (list, tuple)):
                        raise ArenaError(f"{key}: must be a list")
                    kwargs[key] = tuple(value)
            return cls(**kwargs).validate()
        except ArenaError as exc:
            if prefix:
                raise ArenaError(f"{prefix}{exc}") from None
            raise

    def save(self, path: str) -> str:
        """Write the arena spec as pretty-printed JSON; returns the path."""
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "ArenaSpec":
        """Read and validate an arena JSON file."""
        try:
            with open(path) as fh:
                data = json.load(fh)
        except OSError as exc:
            raise ArenaError(f"{path}: cannot read arena file ({exc})") from None
        except ValueError as exc:
            raise ArenaError(f"{path}: invalid JSON ({exc})") from None
        return cls.from_dict(data, source=path)
