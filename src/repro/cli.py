"""Command-line interface for the BHSS library.

Installed as ``repro-bhss`` (see ``pyproject.toml``); also runnable as
``python -m repro.cli``.  Subcommands:

``info``
    Print the configured system's parameters (bandwidth set, hop range,
    patterns with their expected bandwidth/throughput, processing gain).
``simulate``
    Run packets through the jammed link and report PER / BER / goodput.
``threshold``
    Bisect the minimum SNR for the 50 %-PER operating point (the paper's
    power-advantage building block).
``optimize``
    Re-run the Monte-Carlo maximin hop-weight optimization (Table 1's
    parabolic pattern).
``record``
    Generate one packet and write it as a ``.cf32`` recording + JSON
    sidecar for external SDR tooling.
``theory``
    Evaluate the eq.-(11)/(12) improvement bound for one (Bp, Bj) pair.
``bench``
    Time the same packet workload through the serial and batched
    (vectorized) link paths, verify bit-identical statistics, then time a
    multi-point sweep serially and across the ``REPRO_WORKERS`` process
    pool (also bit-checked; the payload records the *measured* pool
    size).  ``--profile`` additionally runs the workload under every
    registered DSP backend (``repro.backend``) with the stage profiler
    on, emitting wall-seconds per DSP stage per backend.  Writes a BENCH
    JSON (``BENCH_pr6.json`` by default); ``--quick`` is the CI smoke
    mode.
``run``
    Execute a declarative scenario JSON file (``--scenario file.json``)
    over its (SNR x SJR) grid, an N-link shared-spectrum network file
    (``--network file.json``) over its links, a jammer-tournament
    arena (``--tournament file.json``) over its strategy x pattern x
    hop-range grid, or a seed-synchronized session (``--session
    file.json``, see ``repro.protocol``) over its operating points, and
    print/export the tidy result table plus the run-type-specific
    aggregates (fairness for networks, the resilience matrix and
    jammer-advantage summary for tournaments, delivery/goodput/re-sync
    stats for sessions).
``scenario``
    Tooling for scenario, network, arena *and* session files:
    ``scenario validate <paths...>`` parse-validates files or
    directories of them (files with a ``links`` array route to the
    network loader, files with a ``jammers`` map to the arena loader,
    files with a ``traffic`` map to the session loader); ``scenario
    list [dir]`` summarizes a directory (default
    ``examples/scenarios``).
``cache``
    Integrity tooling for the ``REPRO_CACHE`` result store:
    ``cache verify [dir]`` audits every entry against its checksum
    (exit 1 on corruption), ``cache gc [dir]`` deletes corrupt entries,
    quarantined files and stray temp files.
``lint``
    Project-invariant static analysis (``repro-lint``): RNG discipline,
    dtype discipline, batch/serial symmetry, registry round-trips, env
    knob docs, mutable defaults and the frozen mypy baseline.

Exit-code convention, shared by every finding-producing subcommand
(``lint``, ``scenario validate``, ``bench``, ``cache verify``): **0**
clean, **1** findings or check failures, **2** usage/input errors (bad
paths, unknown names).
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro.analysis import ThresholdSearch, min_snr_for_per, run_sweep
from repro.backend import available_backends, resolve_backend, use_backend
from repro.core import BHSSConfig, BHSSTransmitter, LinkSimulator, theory
from repro.hopping import (
    expected_bandwidth,
    expected_throughput,
    maximin_score_db,
    optimize_parabolic_weights,
    pattern_weights,
)
from repro.jamming import (
    BandlimitedNoiseJammer,
    HoppingJammer,
    NoJammer,
    SweepJammer,
    ToneJammer,
)
from repro.utils import format_table, save_recording

__all__ = ["main", "build_parser"]

PATTERN_CHOICES = ["linear", "exponential", "parabolic"]


def _add_link_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pattern", choices=PATTERN_CHOICES, default="parabolic", help="hop distribution")
    parser.add_argument("--fixed-bandwidth", type=float, default=None, metavar="HZ", help="disable hopping, pin to this bandwidth")
    parser.add_argument("--payload-bytes", type=int, default=16, help="payload size per packet")
    parser.add_argument("--symbols-per-hop", type=int, default=4, help="symbols per hop dwell")
    parser.add_argument("--seed", type=int, default=0, help="pre-shared link seed")
    parser.add_argument("--fec", default="none", help="channel code: none/rep3/rep5/hamming74/hamming1511")
    parser.add_argument("--no-filtering", action="store_true", help="disable the receiver's jammer filtering")
    parser.add_argument(
        "--backend", choices=list(available_backends()), default=None,
        help="DSP compute backend (default: the REPRO_BACKEND knob, else numpy)",
    )


def _add_jammer_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jammer",
        choices=["none", "noise", "tone", "sweep", "hopping"],
        default="noise",
        help="jammer type",
    )
    parser.add_argument("--jammer-bandwidth", type=float, default=2.5e6, metavar="HZ", help="noise-jammer bandwidth")
    parser.add_argument("--jammer-frequency", type=float, default=1e6, metavar="HZ", help="tone-jammer frequency")
    parser.add_argument("--jammer-pattern", choices=PATTERN_CHOICES, default="linear", help="hopping-jammer distribution")
    parser.add_argument("--jammer-seed", type=int, default=1234, help="the attacker's own random seed")


def _build_config(args) -> BHSSConfig:
    config = BHSSConfig.paper_default(
        pattern=args.pattern,
        seed=args.seed,
        payload_bytes=args.payload_bytes,
        symbols_per_hop=args.symbols_per_hop,
        fec=args.fec,
    )
    if args.fixed_bandwidth is not None:
        config = config.with_fixed_bandwidth(args.fixed_bandwidth)
    if args.no_filtering:
        config = config.without_filtering()
    return config


def _build_jammer(args, config: BHSSConfig):
    fs = config.sample_rate
    if args.jammer == "none":
        return NoJammer()
    if args.jammer == "noise":
        return BandlimitedNoiseJammer(args.jammer_bandwidth, fs)
    if args.jammer == "tone":
        return ToneJammer(args.jammer_frequency, fs)
    if args.jammer == "sweep":
        half = min(args.jammer_bandwidth, fs * 0.9) / 2
        return SweepJammer(-half, half, fs, sweep_duration=1e-3)
    bands = config.bandwidth_set.as_array()
    return HoppingJammer(
        bands,
        fs,
        dwell_samples=16384,
        weights=pattern_weights(args.jammer_pattern, bands),
        seed=args.jammer_seed,
    )


def cmd_info(args) -> int:
    config = _build_config(args)
    bands = config.bandwidth_set
    print("BHSS system configuration")
    print(f"  sample rate       : {config.sample_rate / 1e6:g} MS/s")
    print(f"  bandwidths (MHz)  : {[round(b / 1e6, 5) for b in bands.bandwidths]}")
    print(f"  hop range         : {bands.hop_range:g}x")
    print(f"  processing gain   : {config.processing_gain_db:.2f} dB")
    print(f"  symbols per hop   : {config.symbols_per_hop}")
    print(f"  FEC               : {config.fec}")
    print(f"  frame symbols     : {config.frame_symbols()} (air: {config.air_symbols()})")
    rows = []
    for name in PATTERN_CHOICES:
        w = pattern_weights(name, bands.as_array())
        rows.append(
            [
                name,
                f"{expected_bandwidth(bands.as_array(), w) / 1e6:.3f}",
                f"{expected_throughput(bands.as_array(), w) / 1e3:.0f}",
                f"{maximin_score_db(w, bands.as_array()):.2f}",
            ]
        )
    print()
    print(
        format_table(
            ["pattern", "avg BW (MHz)", "throughput (kb/s)", "worst-case gamma (dB)"],
            rows,
            title="Hop patterns (Table 1)",
        )
    )
    return 0


def cmd_simulate(args) -> int:
    config = _build_config(args)
    link = LinkSimulator(config)
    jammer = _build_jammer(args, config)
    stats = link.run_packets(
        args.packets,
        snr_db=args.snr,
        sjr_db=args.sjr,
        jammer=jammer,
        seed=args.run_seed,
    )
    print(f"jammer        : {jammer.description}")
    print(f"packets       : {stats.num_packets} ({stats.num_accepted} accepted)")
    print(f"PER           : {stats.packet_error_rate:.3f}")
    print(f"BER           : {stats.bit_error_rate:.5f}")
    print(f"goodput       : {stats.throughput_bps / 1e3:.1f} kb/s")
    if any(stats.filter_usage.values()):
        print(f"filter usage  : {stats.filter_usage}")
    return 0


def cmd_threshold(args) -> int:
    config = _build_config(args)
    link = LinkSimulator(config)
    jammer = _build_jammer(args, config)
    search = ThresholdSearch(
        snr_low=args.snr_low,
        snr_high=args.snr_high,
        tolerance_db=args.tolerance,
        packets_per_point=args.packets,
    )
    threshold = min_snr_for_per(
        link, jnr_db=args.jnr, jammer=jammer, search=search, seed=args.run_seed
    )
    print(f"jammer               : {jammer.description} at JNR {args.jnr:g} dB")
    print(f"min SNR for <50% PER : {threshold:.2f} dB")
    if threshold >= args.snr_high:
        print("  (censored at the top of the search bracket — link is jammer-bound)")
    return 0


def cmd_optimize(args) -> int:
    config = _build_config(args)
    bands = config.bandwidth_set.as_array()
    best = optimize_parabolic_weights(bands, num_trials=args.trials, seed=args.run_seed)
    rows = [
        [f"{bands[i] / 1e6:.5g}", f"{100 * best.weights[i]:.2f}"] for i in range(bands.size)
    ]
    print(format_table(["bandwidth (MHz)", "probability (%)"], rows, title="Maximin hop weights"))
    print(f"worst-case expected gamma : {best.score_db:.2f} dB")
    print(f"worst jammer bandwidth    : {best.worst_jammer_bandwidth / 1e6:.5g} MHz")
    return 0


def cmd_record(args) -> int:
    config = _build_config(args)
    packet = BHSSTransmitter(config).transmit(packet_index=args.packet_index)
    save_recording(
        args.output,
        packet.waveform,
        sample_rate=config.sample_rate,
        annotations={
            "pattern": str(config.pattern if isinstance(config.pattern, str) else "custom"),
            "payload_bytes": config.payload_bytes,
            "packet_index": args.packet_index,
            "hop_profile_mhz": [bw / 1e6 for _n, bw in packet.bandwidth_profile()],
        },
    )
    print(f"wrote {packet.num_samples} samples to {args.output} (+ .json sidecar)")
    return 0


def cmd_sweep(args) -> int:
    config = _build_config(args)
    link = LinkSimulator(config)
    sjrs = [float(s) for s in args.sjr_list.split(",")]

    # Each grid point builds its own jammer, so every point is a pure
    # function of its SJR and the sweep parallelizes (REPRO_WORKERS)
    # bit-identically to the serial run.
    def evaluate(sjr: float) -> dict:
        stats = link.run_packets(
            args.packets, snr_db=args.snr, sjr_db=sjr,
            jammer=_build_jammer(args, config), seed=args.run_seed,
        )
        lo, hi = stats.per_confidence_interval()
        return {
            "sjr_db": sjr,
            "per": stats.packet_error_rate,
            "per_lo": lo,
            "per_hi": hi,
            "ber": stats.bit_error_rate,
        }

    result = run_sweep(["sjr_db", "per", "per_lo", "per_hi", "ber"], sjrs, evaluate)
    rows = [
        [f"{r['sjr_db']:g}", f"{r['per']:.3f}", f"[{r['per_lo']:.2f},{r['per_hi']:.2f}]", f"{r['ber']:.5f}"]
        for r in result.rows
    ]
    print(
        format_table(
            ["SJR (dB)", "PER", "95% CI", "BER"],
            rows,
            title=f"PER/BER vs SJR at SNR {args.snr:g} dB — {_build_jammer(args, config).description}",
        )
    )
    if result.timing is not None:
        print(result.timing.summary())
    if args.output:
        csv_lines = [
            "sjr_db,per,per_lo,per_hi,ber",
            *(
                f"{r['sjr_db']:g},{r['per']:.6f},{r['per_lo']:.6f},{r['per_hi']:.6f},{r['ber']:.6f}"
                for r in result.rows
            ),
        ]
        with open(args.output, "w") as fh:
            fh.write("\n".join(csv_lines) + "\n")
        print(f"\nwrote {args.output}")
    return 0


def _bench_batched_link(args, config, link) -> tuple[dict, dict]:
    """Time the same packet workload through the serial and batched paths.

    Each run rebuilds its jammer from the CLI spec so stateful jammers
    (sweepers, hoppers) start from the same state, making the two
    :class:`LinkStats` comparable with plain ``==`` — the batched engine's
    bit-for-bit contract is *checked*, not assumed, on every bench run.

    Walls are the median of ``--repeats`` timed runs per path (after an
    untimed warmup), so one scheduler hiccup does not decide the report.

    Returns ``(report, stats_by_label)``: the JSON-able timing report and
    the raw :class:`LinkStats` per path, so ``--profile`` can bit-compare
    each backend's run against the serial reference.
    """
    import statistics
    import time

    batch = max(2, args.batch)
    num_packets = args.batch_packets if args.batch_packets else (batch if args.quick else 2 * batch)
    repeats = max(1, args.repeats)
    snr_db = 0.5 * (args.snr_low + args.snr_high)
    # Untimed warmup through both paths: fills the pulse/FFT-plan caches
    # and the allocator so the timed runs measure steady state, not
    # cold-process setup.
    for size in (0, batch):
        link.run_packets_batched(
            min(4, num_packets), snr_db=snr_db, sjr_db=args.sjr,
            jammer=_build_jammer(args, config), seed=args.run_seed,
            batch_size=size, cache=False,
        )
    runs: dict[str, dict] = {}
    stats_by_label = {}
    for label, size in (("serial", 0), ("batched", batch)):
        walls = []
        for _ in range(repeats):
            jammer = _build_jammer(args, config)
            t0 = time.perf_counter()
            stats = link.run_packets_batched(
                num_packets, snr_db=snr_db, sjr_db=args.sjr, jammer=jammer,
                seed=args.run_seed, batch_size=size, cache=False,
            )
            walls.append(time.perf_counter() - t0)
            if label in stats_by_label and stats_by_label[label] != stats:
                raise RuntimeError(f"{label} path is not deterministic across repeats")
            stats_by_label[label] = stats
        wall = statistics.median(walls)
        runs[label] = {
            "wall_seconds": wall,
            "wall_seconds_all": walls,
            "packets_per_second": num_packets / wall if wall > 0 else 0.0,
        }
    serial_wall = runs["serial"]["wall_seconds"]
    batched_wall = runs["batched"]["wall_seconds"]
    report = {
        "num_packets": num_packets,
        "batch_size": batch,
        "repeats": repeats,
        "snr_db": snr_db,
        "sjr_db": args.sjr,
        "serial": runs["serial"],
        "batched": runs["batched"],
        "speedup": serial_wall / batched_wall if batched_wall > 0 else 0.0,
        "bit_identical": stats_by_label["serial"] == stats_by_label["batched"],
    }
    return report, stats_by_label


def _profile_backends(args, config, link, batch_report, serial_stats) -> dict:
    """Run the batched link workload under every backend with the profiler on.

    Produces the per-stage, per-backend wall-second breakdown of
    ``--profile``: each registered backend runs the *same* packet
    workload as the link-engine bench (same jammer spec, seed, batch
    size) inside a :func:`repro.backend.profile_stages` scope, so every
    DSP kernel dispatch lands in a named stage bucket.  Bit-exact
    backends are compared ``==`` against the serial reference stats
    (``bit_identical``); accelerated backends get a decision-level
    ``matches_oracle`` flag against the NumPy oracle run (their numeric
    tolerance gate lives in ``tests/test_backend_conformance.py``).
    """
    import time

    from repro.backend import backend_info, profile_stages, use_backend

    num_packets = batch_report["num_packets"]
    batch = batch_report["batch_size"]
    snr_db = batch_report["snr_db"]
    out: dict = {
        "num_packets": num_packets,
        "batch_size": batch,
        "snr_db": snr_db,
        "sjr_db": args.sjr,
        "backends": {},
    }
    oracle_stats = None
    # The NumPy oracle runs first so accelerated backends have a
    # same-process reference to compare decisions against.
    names = ["numpy"] + [n for n in available_backends() if n != "numpy"]
    for name in names:
        with use_backend(name) as backend:
            jammer = _build_jammer(args, config)
            with profile_stages() as prof:
                t0 = time.perf_counter()
                stats = link.run_packets_batched(
                    num_packets, snr_db=snr_db, sjr_db=args.sjr, jammer=jammer,
                    seed=args.run_seed, batch_size=batch, cache=False,
                )
                wall = time.perf_counter() - t0
        entry = backend_info(backend)
        entry["wall_seconds"] = wall
        entry["stage_seconds"] = prof.to_dict()
        if backend.bit_exact:
            entry["bit_identical"] = stats == serial_stats
            oracle_stats = stats
        else:
            entry["matches_oracle"] = oracle_stats is not None and stats == oracle_stats
        out["backends"][name] = entry
    return out


def cmd_bench(args) -> int:
    """Serial-vs-batched link timing plus the serial-vs-pool sweep check."""
    import json

    from repro.runtime import ParallelExecutor, resolve_workers

    config = _build_config(args)
    link = LinkSimulator(config)

    # -- part 1: the vectorized link engine vs the per-packet path ------------
    batch_report, stats_by_label = _bench_batched_link(args, config, link)
    rows = [
        [
            label,
            f"{batch_report[label]['wall_seconds']:.2f}",
            f"{batch_report[label]['packets_per_second']:.1f}",
        ]
        for label in ("serial", "batched")
    ]
    print(
        format_table(
            ["path", "wall (s)", "packets/s"],
            rows,
            title=(
                f"link engine: {batch_report['num_packets']} packets, "
                f"batch {batch_report['batch_size']}"
            ),
        )
    )
    print(f"batch speedup     : {batch_report['speedup']:.2f}x")
    identical = batch_report["bit_identical"]
    print(f"bit-identical     : {'yes' if identical else 'NO — batch/serial divergence'}")
    if batch_report["speedup"] < 1.0:
        print("warning: batched path slower than serial on this workload", file=sys.stderr)

    payload = {"benchmark": "pr6-backend-bench", "batch": batch_report}

    # -- part 2 (--profile): per-stage DSP breakdown for every backend --------
    if args.profile:
        profile = _profile_backends(args, config, link, batch_report, stats_by_label["serial"])
        for name, entry in profile["backends"].items():
            stages = entry["stage_seconds"]["stages"]
            rows = [
                [stage, f"{rec['seconds']:.3f}", str(rec["calls"])]
                for stage, rec in stages.items()
            ]
            kernels = entry["kernels"]
            title = (
                f"backend {name}: {entry['wall_seconds']:.2f} s wall, "
                f"fir={kernels['apply_fir']}"
            )
            print(format_table(["stage", "seconds", "calls"], rows, title=title))
            if "bit_identical" in entry:
                flag = "yes" if entry["bit_identical"] else "NO — oracle diverged from serial"
                print(f"bit-identical     : {flag}")
                identical = identical and entry["bit_identical"]
            else:
                print(f"matches oracle    : {'yes' if entry['matches_oracle'] else 'no'}")
        payload["profile"] = profile

    # -- part 3: serial vs worker-pool sweep (skipped by --quick) -------------
    if not args.quick:
        snrs = [float(s) for s in np.linspace(args.snr_low, args.snr_high, args.points)]
        serial = ParallelExecutor(0)

        def evaluate(snr_db: float) -> dict:
            stats = link.run_packets(
                args.packets, snr_db=snr_db, sjr_db=args.sjr,
                jammer=_build_jammer(args, config), seed=args.run_seed,
                executor=serial, cache=False,
            )
            return {"snr_db": snr_db, "per": stats.packet_error_rate, "ber": stats.bit_error_rate}

        columns = ["snr_db", "per", "ber"]
        # Pool-size resolution: --workers beats REPRO_WORKERS beats the CPU
        # count — but the pool half of this comparison exists to measure the
        # pool, so the CPU-count default is floored at 2.  (The old default
        # collapsed to 1 on single-CPU runners, where ParallelExecutor
        # silently takes the serial path: BENCH_pr3.json's "1.03x parallel
        # speedup" was serial-vs-serial noise.)
        if args.workers is not None:
            requested = args.workers
        else:
            requested = resolve_workers() or max(2, os.cpu_count() or 1)
        base = run_sweep(columns, snrs, evaluate, executor=serial)
        pool = run_sweep(columns, snrs, evaluate, executor=ParallelExecutor(requested))
        # The measured pool size, straight from the executor's MapReport —
        # 1 means the "parallel" run actually took the serial path.
        resolved = pool.timing.workers
        pool_identical = base.rows == pool.rows
        speedup = base.timing.wall_seconds / pool.timing.wall_seconds if pool.timing.wall_seconds > 0 else 0.0
        packets = args.packets * len(snrs)

        rows = []
        for label, timing in [("serial", base.timing), (f"{resolved} workers", pool.timing)]:
            pkt_rate = packets / timing.wall_seconds if timing.wall_seconds > 0 else 0.0
            rows.append([
                label,
                f"{timing.wall_seconds:.2f}",
                f"{timing.points_per_second:.2f}",
                f"{pkt_rate:.1f}",
                f"{100 * timing.utilization:.0f}%",
            ])
        print(
            format_table(
                ["run", "wall (s)", "points/s", "packets/s", "utilization"],
                rows,
                title=f"sweep benchmark: {len(snrs)} points x {args.packets} packets",
            )
        )
        print(f"pool speedup      : {speedup:.2f}x ({resolved} workers, {requested} requested)")
        print(f"bit-identical     : {'yes' if pool_identical else 'NO — determinism violation'}")
        if resolved <= 1:
            print(
                "warning: the pool sweep ran on the serial path "
                f"({requested} worker(s) requested) — the speedup above is not a "
                "parallel measurement",
                file=sys.stderr,
            )
        identical = identical and pool_identical
        payload["sweep"] = {
            "points": len(snrs),
            "packets_per_point": args.packets,
            "workers": resolved,
            "workers_requested": requested,
            "serial": base.timing.to_dict(),
            "parallel": pool.timing.to_dict(),
            "speedup": speedup,
            "bit_identical": pool_identical,
        }

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.output}")
    return 0 if identical else 1


def cmd_reproduce(args) -> int:
    from repro.analysis import SweepResult
    from repro.analysis.experiments import REGISTRY

    if args.list or args.experiment is None:
        rows = [[name, desc] for name, (_fn, desc) in sorted(REGISTRY.items())]
        print(format_table(["experiment", "reproduces"], rows, title="Available experiments"))
        return 0
    try:
        fn, desc = REGISTRY[args.experiment]
    except KeyError:
        print(f"unknown experiment {args.experiment!r}; use --list", file=sys.stderr)
        return 2
    print(f"running {args.experiment}: {desc} (scale {args.scale:g}) ...")
    kwargs = {}
    if args.experiment not in ("fig07", "fig08", "fig09", "fig10", "fig11", "tab1"):
        kwargs["scale"] = args.scale
    outcome = fn(**kwargs)
    results = outcome if isinstance(outcome, tuple) else (outcome,)
    for i, result in enumerate(results):
        assert isinstance(result, SweepResult)
        print()
        print(format_table(result.columns, result.as_table_rows()))
        if args.output:
            from repro.analysis import write_csv

            suffix = f"_{i}" if len(results) > 1 else ""
            base, ext = [*args.output.rsplit(".", 1), "csv"][:2]
            path = write_csv(result, f"{base}{suffix}.{ext}")
            print(f"wrote {path}")
    return 0


def _run_network_file(args) -> int:
    """The ``run --network`` path: one shared-spectrum network file."""
    from repro.network import NetworkError, NetworkSpec, run_network

    try:
        spec = NetworkSpec.load(args.network)
    except NetworkError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    label = f" — {spec.description}" if spec.description else ""
    print(
        f"network {spec.name!r}{label}: "
        f"{spec.num_links} links x {spec.packets} packets, {spec.num_jammers} jammer(s)"
    )
    result = run_network(spec, checkpoint=args.checkpoint)
    rows = [
        [
            r["link"],
            f"{r['snr_db']:g}",
            f"{r['sjr_db']:g}",
            f"{r['per']:.3f}",
            f"[{r['per_lo']:.2f},{r['per_hi']:.2f}]",
            f"{r['ber']:.5f}",
            f"{r['throughput_bps'] / 1e3:.1f}",
        ]
        for r in result.records
    ]
    print(
        format_table(
            ["link", "SNR (dB)", "SJR (dB)", "PER", "95% CI", "BER", "goodput (kb/s)"],
            rows,
            title=f"network: {spec.name}",
        )
    )
    agg = result.aggregates()
    print(
        f"network throughput {agg['network_throughput_bps'] / 1e3:.1f} kb/s, "
        f"Jain fairness {agg['fairness']:.4f}, mean PER {agg['mean_per']:.3f}"
    )
    if result.timing is not None:
        print(result.timing.summary())
    if args.output:
        from repro.analysis import write_csv

        print(f"wrote {write_csv(result.to_sweep_result(), args.output)}")
    return 0


def _run_tournament_file(args) -> int:
    """The ``run --tournament`` path: one arena (jammer tournament) file."""
    from repro.arena import ArenaError, ArenaSpec, run_tournament

    try:
        spec = ArenaSpec.load(args.tournament)
    except ArenaError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    label = f" — {spec.description}" if spec.description else ""
    print(
        f"tournament {spec.name!r}{label}: "
        f"{len(spec.jammers)} jammers x {len(spec.patterns)} patterns x "
        f"{len(spec.hop_ranges)} hop ranges = {spec.num_cells} cells "
        f"x {spec.packets} packets"
    )
    result = run_tournament(spec, checkpoint=args.checkpoint)
    rows = [
        [
            r["jammer"],
            r["pattern"],
            f"{r['num_bands']}",
            f"{r['hop_range']:g}",
            f"{r['per']:.3f}",
            f"[{r['per_lo']:.2f},{r['per_hi']:.2f}]",
            f"{r['ber']:.5f}",
            f"{r['throughput_bps'] / 1e3:.1f}",
        ]
        for r in result.records
    ]
    print(
        format_table(
            ["jammer", "pattern", "bands", "hop range", "PER", "95% CI", "BER", "goodput (kb/s)"],
            rows,
            title=f"resilience matrix: {spec.name}",
        )
    )
    if spec.baseline_label is not None:
        advantage = result.jammer_advantage()
        if advantage:
            summary = ", ".join(f"{k} {v:+.3f}" for k, v in sorted(advantage.items()))
            print(f"jammer advantage (PER points vs {spec.baseline_label!r}): {summary}")
    else:
        print('(no {"type": "none"} baseline jammer: jammer-advantage summary skipped)')
    if result.timing is not None:
        print(result.timing.summary())
    if args.output:
        from repro.analysis import write_csv

        print(f"wrote {write_csv(result.to_sweep_result(), args.output)}")
    return 0


def _run_session_file(args) -> int:
    """The ``run --session`` path: one seed-synchronized session file."""
    from repro.protocol import SessionError, SessionSpec, run_session

    try:
        spec = SessionSpec.load(args.session)
    except SessionError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    label = f" — {spec.description}" if spec.description else ""
    print(
        f"session {spec.name!r}{label}: "
        f"{len(spec.points())} operating points, "
        f"{spec.traffic.num_messages} messages x {spec.traffic.message_bytes} bytes "
        f"({spec.num_fragments()} fragments), "
        f"retry budget {spec.resync_retries} x {spec.sync_timeout}"
    )
    result = run_session(spec, checkpoint=args.checkpoint)
    rows = [
        [
            f"{r['snr_db']:g}",
            f"{r['sjr_db']:g}",
            f"{r['delivery_ratio']:.3f}",
            f"{r['goodput_bps'] / 1e3:.1f}",
            f"{r['data_per']:.3f}",
            f"{r['desync_count']:g}",
            f"{r['resync_count']:g}",
            f"{r['mean_resync_latency']:.1f}",
            "yes" if r["degraded"] else "no",
        ]
        for r in result.rows
    ]
    print(
        format_table(
            [
                "SNR (dB)", "SJR (dB)", "delivery", "goodput (kb/s)", "data PER",
                "desyncs", "resyncs", "resync slots", "degraded",
            ],
            rows,
            title=f"session: {spec.name}",
        )
    )
    if result.timing is not None:
        print(result.timing.summary())
    if args.output:
        from repro.analysis import write_csv

        print(f"wrote {write_csv(result, args.output)}")
    return 0


def cmd_run(args) -> int:
    from repro.scenario import Scenario, ScenarioError, run_scenario

    given = [n for n in ("scenario", "network", "tournament", "session") if getattr(args, n)]
    if len(given) != 1:
        print(
            "run: exactly one of --scenario, --network, --tournament or --session "
            "is required",
            file=sys.stderr,
        )
        return 2
    if args.session:
        return _run_session_file(args)
    if args.tournament:
        return _run_tournament_file(args)
    if args.network:
        return _run_network_file(args)
    try:
        scenario = Scenario.load(args.scenario)
    except ScenarioError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    label = f" — {scenario.description}" if scenario.description else ""
    print(
        f"scenario {scenario.name!r}{label}: "
        f"{len(scenario.points())} points x {scenario.packets} packets"
    )
    result = run_scenario(scenario, checkpoint=args.checkpoint)
    rows = [
        [
            f"{r['snr_db']:g}",
            f"{r['sjr_db']:g}",
            f"{r['per']:.3f}",
            f"[{r['per_lo']:.2f},{r['per_hi']:.2f}]",
            f"{r['ber']:.5f}",
            f"{r['throughput_bps'] / 1e3:.1f}",
        ]
        for r in result.rows
    ]
    print(
        format_table(
            ["SNR (dB)", "SJR (dB)", "PER", "95% CI", "BER", "goodput (kb/s)"],
            rows,
            title=f"scenario: {scenario.name}",
        )
    )
    if result.timing is not None:
        print(result.timing.summary())
    if args.output:
        from repro.analysis import write_csv

        print(f"wrote {write_csv(result, args.output)}")
    return 0


def _scenario_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of scenario JSON files."""
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(
                sorted(
                    os.path.join(path, name)
                    for name in os.listdir(path)
                    if name.endswith(".json")
                )
            )
        else:
            files.append(path)
    return files


def _is_network_file(path: str) -> bool:
    """Whether a spec file is a network spec (has a ``links`` array).

    Unreadable/unparsable files return ``False`` so they fall through to
    the scenario loader, whose error messages name the problem.
    """
    import json

    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return False
    return isinstance(data, dict) and "links" in data


def _is_arena_file(path: str) -> bool:
    """Whether a spec file is a tournament arena (has a ``jammers`` map).

    Same fall-through contract as :func:`_is_network_file`: unreadable or
    unparsable files return ``False`` and land in the scenario loader.
    """
    import json

    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return False
    return isinstance(data, dict) and "jammers" in data and "links" not in data


def _is_session_file(path: str) -> bool:
    """Whether a spec file is a protocol session (has a ``traffic`` map).

    Same fall-through contract as :func:`_is_network_file`: unreadable or
    unparsable files return ``False`` and land in the scenario loader.
    """
    import json

    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return False
    return (
        isinstance(data, dict)
        and "traffic" in data
        and "links" not in data
        and "jammers" not in data
    )


def cmd_scenario_validate(args) -> int:
    from repro.arena import ArenaError, ArenaSpec
    from repro.network import NetworkError, NetworkSpec
    from repro.protocol import SessionError, SessionSpec
    from repro.scenario import Scenario, ScenarioError

    files = _scenario_files(args.paths)
    if not files:
        print("no scenario files found", file=sys.stderr)
        return 2
    failures = 0
    for path in files:
        try:
            if _is_session_file(path):
                session = SessionSpec.load(path)
                print(
                    f"ok    {path}: {session.name} "
                    f"({len(session.points())} points, "
                    f"{session.traffic.num_messages} messages x "
                    f"{session.traffic.message_bytes} bytes)"
                )
            elif _is_arena_file(path):
                arena = ArenaSpec.load(path)
                print(
                    f"ok    {path}: {arena.name} "
                    f"({arena.num_cells} cells x {arena.packets} packets, "
                    f"{len(arena.jammers)} jammer(s))"
                )
            elif _is_network_file(path):
                network = NetworkSpec.load(path)
                print(
                    f"ok    {path}: {network.name} "
                    f"({network.num_links} links x {network.packets} packets, "
                    f"{network.num_jammers} jammer(s))"
                )
            else:
                scenario = Scenario.load(path)
                print(
                    f"ok    {path}: {scenario.name} "
                    f"({len(scenario.points())} points x {scenario.packets} packets)"
                )
        except (ArenaError, NetworkError, SessionError, ScenarioError) as exc:
            failures += 1
            print(f"FAIL  {exc}")
    print(f"{len(files) - failures}/{len(files)} scenario files valid")
    return 1 if failures else 0


def cmd_scenario_list(args) -> int:
    from repro.arena import ArenaError, ArenaSpec
    from repro.network import NetworkError, NetworkSpec
    from repro.protocol import SessionError, SessionSpec
    from repro.scenario import Scenario, ScenarioError

    files = _scenario_files([args.directory])
    if not files:
        print(f"no scenario files in {args.directory!r}", file=sys.stderr)
        return 2
    rows = []
    for path in files:
        if _is_session_file(path):
            try:
                sess = SessionSpec.load(path)
            except SessionError:
                rows.append([os.path.basename(path), "(invalid)", "-", "-", "-"])
                continue
            rows.append(
                [
                    os.path.basename(path),
                    sess.name,
                    f"session ({sess.jammer.get('type', '?')})",
                    f"{len(sess.points())} pts x{sess.traffic.num_messages} msgs",
                    sess.description[:48],
                ]
            )
            continue
        if _is_arena_file(path):
            try:
                a = ArenaSpec.load(path)
            except ArenaError:
                rows.append([os.path.basename(path), "(invalid)", "-", "-", "-"])
                continue
            rows.append(
                [
                    os.path.basename(path),
                    a.name,
                    f"arena ({len(a.jammers)} jammers)",
                    f"{a.num_cells} cells x{a.packets}",
                    a.description[:48],
                ]
            )
            continue
        if _is_network_file(path):
            try:
                n = NetworkSpec.load(path)
            except NetworkError:
                rows.append([os.path.basename(path), "(invalid)", "-", "-", "-"])
                continue
            rows.append(
                [
                    os.path.basename(path),
                    n.name,
                    f"network ({n.num_jammers} jammed)",
                    f"{n.num_links} links x{n.packets}",
                    n.description[:48],
                ]
            )
            continue
        try:
            s = Scenario.load(path)
        except ScenarioError:
            rows.append([os.path.basename(path), "(invalid)", "-", "-", "-"])
            continue
        rows.append(
            [
                os.path.basename(path),
                s.name,
                str(s.jammer.get("type", "?")),
                f"{len(s.points())}x{s.packets}",
                s.description[:48],
            ]
        )
    print(
        format_table(
            ["file", "name", "jammer", "points x packets", "description"],
            rows,
            title=f"scenarios in {args.directory}",
        )
    )
    return 0


def _cache_store(directory: str | None):
    """The result cache named on the command line or by ``REPRO_CACHE``."""
    from repro.runtime import ResultCache

    if directory:
        return ResultCache(directory)
    store = ResultCache.from_env()
    if store is None:
        print(
            "no cache directory given and REPRO_CACHE is unset "
            "(pass a directory or set REPRO_CACHE)",
            file=sys.stderr,
        )
    return store


def cmd_cache_verify(args) -> int:
    store = _cache_store(args.directory)
    if store is None:
        return 2
    audit = store.verify()
    print(f"cache {store.root}")
    print(f"  entries     : {audit.entries}")
    print(f"  valid       : {audit.valid}")
    if audit.legacy:
        print(f"  legacy      : {audit.legacy} (pre-checksum entries, still served)")
    print(f"  corrupt     : {audit.corrupt}")
    if audit.quarantined:
        print(f"  quarantined : {audit.quarantined}")
    for path in audit.corrupt_paths:
        print(f"  CORRUPT {path}")
    if audit.corrupt:
        print("cache verify: FAILED (run `repro-bhss cache gc` to clean)", file=sys.stderr)
        return 1
    print("cache verify: ok")
    return 0


def cmd_cache_gc(args) -> int:
    store = _cache_store(args.directory)
    if store is None:
        return 2
    audit = store.gc()
    print(f"cache {store.root}")
    print(f"  removed     : {audit.removed} (corrupt entries, quarantined and temp files)")
    print(f"  remaining   : {audit.entries} entries ({audit.valid} valid, {audit.legacy} legacy)")
    return 0


def cmd_lint(args) -> int:
    from repro.lint import all_rules, format_findings, run_lint

    if args.list_rules:
        rows = [[rule.id, rule.description] for rule in all_rules()]
        print(format_table(["rule", "enforces"], rows, title="repro-lint rules"))
        return 0
    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    try:
        report = run_lint(args.paths, root=args.root, rules=rules)
    except (FileNotFoundError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(format_findings(report, args.format))
    return 0 if report.ok else 1


def cmd_theory(args) -> int:
    gamma_db = theory.improvement_factor_db(args.bp, args.bj, args.jammer_power, args.noise_power)
    print(f"Bp = {args.bp:g} Hz, Bj = {args.bj:g} Hz (ratio {args.bp / args.bj:g})")
    print(f"gamma upper bound = {float(gamma_db):.2f} dB")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bhss",
        description="Bandwidth Hopping Spread Spectrum (CoNEXT 2015) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="show the configured system")
    _add_link_options(p_info)
    p_info.set_defaults(func=cmd_info)

    p_sim = sub.add_parser("simulate", help="run packets through the jammed link")
    _add_link_options(p_sim)
    _add_jammer_options(p_sim)
    p_sim.add_argument("--packets", type=int, default=20)
    p_sim.add_argument("--snr", type=float, default=15.0, help="signal-to-noise ratio (dB)")
    p_sim.add_argument("--sjr", type=float, default=-10.0, help="signal-to-jammer ratio (dB)")
    p_sim.add_argument("--run-seed", type=int, default=0)
    p_sim.set_defaults(func=cmd_simulate)

    p_thr = sub.add_parser("threshold", help="min SNR for the 50%% PER point")
    _add_link_options(p_thr)
    _add_jammer_options(p_thr)
    p_thr.add_argument("--jnr", type=float, default=25.0, help="jammer power over noise (dB)")
    p_thr.add_argument("--packets", type=int, default=12)
    p_thr.add_argument("--snr-low", type=float, default=-12.0)
    p_thr.add_argument("--snr-high", type=float, default=45.0)
    p_thr.add_argument("--tolerance", type=float, default=1.0)
    p_thr.add_argument("--run-seed", type=int, default=0)
    p_thr.set_defaults(func=cmd_threshold)

    p_opt = sub.add_parser("optimize", help="Monte-Carlo maximin hop weights")
    _add_link_options(p_opt)
    p_opt.add_argument("--trials", type=int, default=3000)
    p_opt.add_argument("--run-seed", type=int, default=0)
    p_opt.set_defaults(func=cmd_optimize)

    p_rec = sub.add_parser("record", help="write one packet as a .cf32 recording")
    _add_link_options(p_rec)
    p_rec.add_argument("--output", "-o", default="bhss_packet.cf32")
    p_rec.add_argument("--packet-index", type=int, default=0)
    p_rec.set_defaults(func=cmd_record)

    p_swp = sub.add_parser("sweep", help="PER/BER vs SJR sweep (optionally to CSV)")
    _add_link_options(p_swp)
    _add_jammer_options(p_swp)
    p_swp.add_argument("--packets", type=int, default=20)
    p_swp.add_argument("--snr", type=float, default=15.0)
    p_swp.add_argument("--sjr-list", default="5,0,-5,-10,-15", help="comma-separated SJR values (dB)")
    p_swp.add_argument("--output", "-o", default=None, help="also write a CSV here")
    p_swp.add_argument("--run-seed", type=int, default=0)
    p_swp.set_defaults(func=cmd_sweep)

    p_rep = sub.add_parser("reproduce", help="re-run a paper table/figure experiment")
    p_rep.add_argument("experiment", nargs="?", default=None, help="experiment name (see --list)")
    p_rep.add_argument("--list", action="store_true", help="list available experiments")
    p_rep.add_argument("--scale", type=float, default=1.0, help="packet-budget multiplier")
    p_rep.add_argument("--output", "-o", default=None, help="write result CSV(s) here")
    p_rep.set_defaults(func=cmd_reproduce)

    p_bench = sub.add_parser("bench", help="time the batched link engine and the worker pool")
    _add_link_options(p_bench)
    _add_jammer_options(p_bench)
    p_bench.add_argument("--points", type=int, default=8, help="grid points in the timed sweep")
    p_bench.add_argument("--packets", type=int, default=6, help="packets per grid point")
    p_bench.add_argument("--snr-low", type=float, default=0.0)
    p_bench.add_argument("--snr-high", type=float, default=20.0)
    p_bench.add_argument("--sjr", type=float, default=-10.0)
    p_bench.add_argument(
        "--workers", type=int, default=None,
        help="pool size (default: REPRO_WORKERS, else CPU count floored at 2 so "
        "the pool is actually exercised)",
    )
    p_bench.add_argument("--batch", type=int, default=64, help="packets per stacked link call")
    p_bench.add_argument(
        "--batch-packets", type=int, default=None,
        help="packets in the link-engine comparison (default: 2x batch, 1x with --quick)",
    )
    p_bench.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: smaller link workload, skip the pool sweep",
    )
    p_bench.add_argument(
        "--repeats", type=int, default=3,
        help="timed runs per path; the median wall is reported",
    )
    p_bench.add_argument(
        "--profile", action="store_true",
        help="per-stage DSP timing breakdown under every compute backend",
    )
    p_bench.add_argument("--run-seed", type=int, default=0)
    p_bench.add_argument("--output", "-o", default="BENCH_pr6.json", help="write the BENCH JSON here ('' disables)")
    # Bench against the fast-hopping workload (one symbol per hop dwell,
    # the paper-default linear hop distribution): it maximizes segments
    # per packet, which is exactly the regime the batched segment-grouping
    # engine exists for.  --pattern / --payload-bytes / --symbols-per-hop
    # / --jammer still override as usual.
    p_bench.set_defaults(
        func=cmd_bench, pattern="linear", payload_bytes=8, symbols_per_hop=1, jammer="tone"
    )

    p_run = sub.add_parser(
        "run",
        help="execute a declarative scenario, network, tournament, or session JSON file",
    )
    p_run.add_argument("--scenario", default=None, metavar="FILE", help="scenario JSON file")
    p_run.add_argument(
        "--network", default=None, metavar="FILE",
        help="N-link network JSON file (see repro.network.NetworkSpec)",
    )
    p_run.add_argument(
        "--tournament", default=None, metavar="FILE",
        help="jammer-tournament arena JSON file (see repro.arena.ArenaSpec)",
    )
    p_run.add_argument(
        "--session", default=None, metavar="FILE",
        help="seed-synchronized session JSON file (see repro.protocol.SessionSpec)",
    )
    p_run.add_argument("--output", "-o", default=None, help="also write the result CSV here")
    p_run.add_argument(
        "--checkpoint", default=None, metavar="DIR",
        help="checkpoint completed grid points here and resume interrupted runs "
        "(default: the REPRO_CHECKPOINT environment knob)",
    )
    p_run.set_defaults(func=cmd_run)

    p_scn = sub.add_parser("scenario", help="validate or list scenario files")
    scn_sub = p_scn.add_subparsers(dest="scenario_command", required=True)
    p_val = scn_sub.add_parser("validate", help="parse-validate scenario files or directories")
    p_val.add_argument("paths", nargs="+", help="scenario JSON files and/or directories")
    p_val.set_defaults(func=cmd_scenario_validate)
    p_lst = scn_sub.add_parser("list", help="summarize a directory of scenario files")
    p_lst.add_argument("directory", nargs="?", default="examples/scenarios")
    p_lst.set_defaults(func=cmd_scenario_list)

    p_cache = sub.add_parser("cache", help="verify or clean the on-disk result cache")
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cv = cache_sub.add_parser("verify", help="audit every entry against its checksum")
    p_cv.add_argument("directory", nargs="?", default=None, help="cache root (default: REPRO_CACHE)")
    p_cv.set_defaults(func=cmd_cache_verify)
    p_cg = cache_sub.add_parser("gc", help="delete corrupt, quarantined and temp files")
    p_cg.add_argument("directory", nargs="?", default=None, help="cache root (default: REPRO_CACHE)")
    p_cg.set_defaults(func=cmd_cache_gc)

    p_lint = sub.add_parser("lint", help="project-invariant static analysis (repro-lint)")
    p_lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files/directories to scan (default: src)",
    )
    p_lint.add_argument(
        "--format", choices=["pretty", "json", "github"], default="pretty",
        help="output style (github emits PR-diff annotations)",
    )
    p_lint.add_argument(
        "--rules", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all; see --list-rules)",
    )
    p_lint.add_argument(
        "--root", default=".",
        help="repository root anchoring report paths and docs/pyproject cross-checks",
    )
    p_lint.add_argument("--list-rules", action="store_true", help="print the rule table and exit")
    p_lint.set_defaults(func=cmd_lint)

    p_thy = sub.add_parser("theory", help="evaluate the SNR improvement bound")
    p_thy.add_argument("--bp", type=float, required=True, help="signal bandwidth (Hz)")
    p_thy.add_argument("--bj", type=float, required=True, help="jammer bandwidth (Hz)")
    p_thy.add_argument("--jammer-power", type=float, default=20.0, help="jammer power over chip (dB)")
    p_thy.add_argument("--noise-power", type=float, default=0.01, help="per-chip noise variance")
    p_thy.set_defaults(func=cmd_theory)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    selection = getattr(args, "backend", None)
    if selection is None:
        try:
            # Resolve the env knob up front so a typo'd REPRO_BACKEND is a
            # clean usage error, not a mid-command traceback.
            selection = resolve_backend()
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        # --backend scopes to this command: repeated in-process main()
        # calls (tests, notebooks) must not leak a selection.
        with use_backend(selection):
            return args.func(args)
    except BrokenPipeError:
        # output piped into e.g. `head` that exited early — not an error
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
