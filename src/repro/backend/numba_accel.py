"""Numba-accelerated backend with a per-kernel capability-probe fallback.

When Numba is importable, the FIR kernels (``apply_fir_batch`` /
``fft_convolve_batch``) run a jitted direct-form convolution for *short*
filters: below :data:`JIT_FIR_MAX_TAPS` taps the O(N*K) inner loop beats
the FFT overlap-save's transform overhead, and the jitted loop has no
per-block Python cost at all.  Long filters (the 3181-tap excision and
low-pass banks) stay on the NumPy overlap-save reference, which is the
right algorithm at that size.  Everything else (Welch PSD, modulation,
DSSS) inherits the NumPy reference unchanged.

When Numba is absent — probed with :func:`importlib.util.find_spec`, no
import error ever escapes — the backend still constructs and runs: every
kernel falls back to the inherited NumPy reference, and
:meth:`NumbaBackend.capabilities` reports ``jit: false`` so benchmarks
and conformance tests can see that the accelerated path was not
exercised.

Conformance tier: ``bit_exact = False``.  The direct-form sum is not the
FFT overlap-save sum, so outputs are tolerance-checked against the NumPy
oracle (``tests/test_backend_conformance.py``), never bit-compared.
"""

from __future__ import annotations

import importlib
import importlib.util
from typing import Any, Callable

import numpy as np

from repro.backend.numpy_ref import NumpyBackend

__all__ = ["JIT_FIR_MAX_TAPS", "NumbaBackend", "numba_available"]

#: longest filter the jitted direct-form kernel accepts; beyond this the
#: FFT overlap-save reference is asymptotically better and is used instead.
JIT_FIR_MAX_TAPS = 64


def numba_available() -> bool:
    """Capability probe: is a working ``numba`` importable?"""
    return importlib.util.find_spec("numba") is not None


def _load_numba() -> Any | None:
    """Import numba if present; any failure degrades to the NumPy path."""
    if not numba_available():
        return None
    try:
        return importlib.import_module("numba")
    except Exception:
        return None


def _build_convolve_kernel(numba: Any) -> Callable[..., None]:
    """Compile the row-wise direct-form convolution kernel.

    ``x`` is ``(R, N)``, ``h`` is ``(R, K)`` (shared taps are broadcast by
    the caller), ``out`` is ``(R, N + K - 1)`` and must arrive zeroed.
    Numba specializes per dtype, so float64 and complex128 batches each
    get their own native loop.
    """

    @numba.njit(cache=True)
    def convolve_rows(x: np.ndarray, h: np.ndarray, out: np.ndarray) -> None:
        rows, n = x.shape
        k = h.shape[1]
        for r in range(rows):
            for i in range(n):
                v = x[r, i]
                for j in range(k):
                    out[r, i + j] += v * h[r, j]

    return convolve_rows


class NumbaBackend(NumpyBackend):
    """Numba-jitted FIR kernels over the NumPy reference baseline."""

    name = "numba"
    bit_exact = False

    def __init__(self) -> None:
        numba = _load_numba()
        self._convolve_rows: Callable[..., None] | None = (
            _build_convolve_kernel(numba) if numba is not None else None
        )

    @property
    def jit_active(self) -> bool:
        """Whether the jitted kernels compiled (False = full NumPy fallback)."""
        return self._convolve_rows is not None

    def capabilities(self) -> dict[str, Any]:
        caps = super().capabilities()
        fir = f"numba-jit(<= {JIT_FIR_MAX_TAPS} taps)" if self.jit_active else "numpy-fallback"
        caps["jit"] = self.jit_active
        caps["jit_fir_max_taps"] = JIT_FIR_MAX_TAPS
        caps["kernels"]["apply_fir"] = fir
        caps["kernels"]["fft_convolve"] = fir
        return caps

    # -- jitted kernels --------------------------------------------------------

    def _convolve_full(self, x: np.ndarray, h: np.ndarray) -> np.ndarray:
        """Full linear convolution of each row via the jitted kernel."""
        assert self._convolve_rows is not None
        rows, n = x.shape
        k = h.shape[-1]
        complex_out = np.iscomplexobj(x) or np.iscomplexobj(h)
        dtype = np.complex128 if complex_out else np.float64
        xc = np.ascontiguousarray(x, dtype=dtype)
        hc = np.ascontiguousarray(np.broadcast_to(h, (rows, k)), dtype=dtype)
        out = np.zeros((rows, n + k - 1), dtype=dtype)
        self._convolve_rows(xc, hc, out)
        return out

    def apply_fir_batch(
        self,
        signals: np.ndarray,
        taps: np.ndarray,
        mode: str,
        block_size: int | None,
    ) -> np.ndarray:
        k = int(np.asarray(taps).shape[-1])
        if self._convolve_rows is None or k > JIT_FIR_MAX_TAPS:
            return super().apply_fir_batch(signals, taps, mode, block_size)
        out = self._convolve_full(signals, np.asarray(taps))
        n = signals.shape[1]
        if mode == "full":
            return out
        # "same" and "compensated" agree for linear-phase trims: both keep
        # n samples starting at the (k-1)//2 group-delay offset.
        start = (k - 1) // 2
        return out[:, start : start + n]

    def fft_convolve_batch(
        self,
        signals: np.ndarray,
        taps: np.ndarray,
        taps_fft: np.ndarray | None,
    ) -> np.ndarray:
        k = int(np.asarray(taps).shape[-1])
        # A caller-precomputed taps spectrum means the FFT path is already
        # amortized (cached pulse spectra); keep it on the reference.
        if self._convolve_rows is None or taps_fft is not None or k > JIT_FIR_MAX_TAPS:
            return super().fft_convolve_batch(signals, taps, taps_fft)
        return self._convolve_full(signals, np.asarray(taps))
