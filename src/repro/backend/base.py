"""The :class:`DSPBackend` protocol every compute backend implements.

A backend owns the *numerics* of the six hot batch primitives of the
signal chain — FIR application, fast convolution, Welch PSD, chip
modulation, DSSS spreading/despreading.  The public module functions
(:func:`repro.dsp.fir.apply_fir_batch` and friends) keep doing all
argument validation and dtype coercion, then hand the checked arrays to
the active backend through :func:`repro.backend.dispatch`, so every
backend sees identical, pre-validated inputs.

Two conformance tiers exist, declared by :attr:`DSPBackend.bit_exact`:

* ``bit_exact=True`` — outputs must be *bit-identical* to the NumPy
  reference implementation (the batch==serial equivalence wall extends
  through the backend unchanged).
* ``bit_exact=False`` — outputs must match the NumPy oracle within the
  tolerances of ``tests/test_backend_conformance.py`` (accelerated
  kernels may reassociate floating-point work).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, ClassVar

import numpy as np

if TYPE_CHECKING:
    from repro.phy.qpsk import ChipModulator
    from repro.spread.dsss import DespreadResult, SixteenAryDSSS

__all__ = ["DSPBackend"]


class DSPBackend(ABC):
    """Interface of a pluggable DSP compute backend.

    Subclasses set :attr:`name` (the ``REPRO_BACKEND`` registry key) and
    :attr:`bit_exact`, and implement the six kernel methods.  Inputs are
    pre-validated by the public wrappers: shapes are 2-D with consistent
    batch axes, dtypes are already coerced, and the degenerate batches a
    kernel cannot express (zero rows, zero-length signals) are
    early-returned by the wrappers before dispatch.
    """

    #: registry key selected by ``REPRO_BACKEND`` / ``--backend``
    name: ClassVar[str] = ""
    #: whether outputs are bit-identical to the NumPy reference
    bit_exact: ClassVar[bool] = False

    @classmethod
    def available(cls) -> bool:
        """Whether this backend can run at all in this environment.

        Backends with optional acceleration (e.g. Numba) should return
        ``True`` even when the accelerator is absent if they can fall
        back per-kernel; :meth:`capabilities` reports what is actually
        accelerated.
        """
        return True

    def capabilities(self) -> dict[str, Any]:
        """Describe what this backend accelerates (for bench metadata).

        The default reports every kernel as the NumPy reference.
        """
        return {
            "bit_exact": self.bit_exact,
            "kernels": {
                "apply_fir": "numpy",
                "fft_convolve": "numpy",
                "welch_psd": "numpy",
                "modulate": "numpy",
                "spread": "numpy",
                "despread": "numpy",
            },
        }

    # -- kernels ---------------------------------------------------------------

    @abstractmethod
    def apply_fir_batch(
        self,
        signals: np.ndarray,
        taps: np.ndarray,
        mode: str,
        block_size: int | None,
    ) -> np.ndarray:
        """Row-wise overlap-save FIR filtering of a validated ``(R, N)`` stack."""

    @abstractmethod
    def fft_convolve_batch(
        self,
        signals: np.ndarray,
        taps: np.ndarray,
        taps_fft: np.ndarray | None,
    ) -> np.ndarray:
        """Row-wise full linear convolution of a validated ``(R, N)`` stack."""

    @abstractmethod
    def welch_psd_batch(
        self,
        x: np.ndarray,
        sample_rate: float,
        nperseg: int,
        noverlap: int | None,
        window: Any,
        nfft: int | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Row-wise Welch PSD of a validated ``(R, N)`` complex stack."""

    @abstractmethod
    def modulate_batch(
        self, modulator: "ChipModulator", chips: np.ndarray, sps: int
    ) -> np.ndarray:
        """Pulse-shaped QPSK modulation of a validated ``(R, n)`` complex-chip stack."""

    @abstractmethod
    def spread_batch(
        self, modem: "SixteenAryDSSS", symbols: np.ndarray, start_chip: Any
    ) -> np.ndarray:
        """16-ary DSSS spreading of a validated ``(R, n_sym)`` symbol stack."""

    @abstractmethod
    def despread_batch(
        self, modem: "SixteenAryDSSS", soft_chips: np.ndarray, start_chip: Any
    ) -> "DespreadResult":
        """16-ary DSSS correlator bank over a validated ``(R, n_chips)`` stack."""
