"""The NumPy reference backend — the bit-identical oracle.

Every kernel delegates to the reference implementation that lives next to
the public wrapper it serves (``_apply_fir_batch_reference`` in
:mod:`repro.dsp.fir`, ``ChipModulator._shape_chips_batch``, ...).  Those
bodies are the original, equivalence-wall-audited numerics: each row of
every output is bit-identical to the serial twin named in
``repro.lint.manifest.BATCH_EQUIVALENCE``.  Accelerated backends are
conformance-tested *against this backend*, so its outputs define the
contract.

Imports of the kernel modules happen inside the methods: the dsp/phy/
spread modules import :mod:`repro.backend` for dispatch, so importing
them here at module scope would be circular.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.backend.base import DSPBackend

if TYPE_CHECKING:
    from repro.phy.qpsk import ChipModulator
    from repro.spread.dsss import DespreadResult, SixteenAryDSSS

__all__ = ["NumpyBackend"]


class NumpyBackend(DSPBackend):
    """Pure-NumPy backend; outputs are the bit-exact reference."""

    name = "numpy"
    bit_exact = True

    def apply_fir_batch(
        self,
        signals: np.ndarray,
        taps: np.ndarray,
        mode: str,
        block_size: int | None,
    ) -> np.ndarray:
        from repro.dsp.fir import _apply_fir_batch_reference

        return _apply_fir_batch_reference(signals, taps, mode, block_size)

    def fft_convolve_batch(
        self,
        signals: np.ndarray,
        taps: np.ndarray,
        taps_fft: np.ndarray | None,
    ) -> np.ndarray:
        from repro.dsp.fir import _fft_convolve_batch_reference

        return _fft_convolve_batch_reference(signals, taps, taps_fft)

    def welch_psd_batch(
        self,
        x: np.ndarray,
        sample_rate: float,
        nperseg: int,
        noverlap: int | None,
        window: Any,
        nfft: int | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        from repro.dsp.spectral import _welch_psd_batch_reference

        return _welch_psd_batch_reference(x, sample_rate, nperseg, noverlap, window, nfft)

    def modulate_batch(
        self, modulator: "ChipModulator", chips: np.ndarray, sps: int
    ) -> np.ndarray:
        return modulator._shape_chips_batch(chips, sps)

    def spread_batch(
        self, modem: "SixteenAryDSSS", symbols: np.ndarray, start_chip: Any
    ) -> np.ndarray:
        return modem._spread_batch_reference(symbols, start_chip)

    def despread_batch(
        self, modem: "SixteenAryDSSS", soft_chips: np.ndarray, start_chip: Any
    ) -> "DespreadResult":
        return modem._despread_batch_reference(soft_chips, start_chip)
