"""Pluggable DSP compute backends and the per-stage profiler hook.

The hot batch primitives of the signal chain (FIR application, fast
convolution, Welch PSD, chip modulation, DSSS spread/despread) dispatch
through this package: the public wrappers validate their arguments, then
call :func:`dispatch`, which routes to the *active*
:class:`~repro.backend.base.DSPBackend` and — when a profiler is open —
attributes the kernel's wall time to its stage.

Backend selection, in precedence order:

* :func:`set_backend` / :func:`use_backend` (what ``--backend`` and a
  scenario's ``"backend"`` field call),
* the ``REPRO_BACKEND`` environment knob (``numpy`` | ``numba``),
* the default: ``numpy``, the bit-identical reference oracle.

The registry is factory-based and lazy: naming a backend never imports
its accelerator, and a missing accelerator degrades inside the backend
itself (see :mod:`repro.backend.numba_accel`), so selection is always
safe.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.backend.base import DSPBackend
from repro.runtime.instrument import StageProfiler

__all__ = [
    "BACKEND_FACTORIES",
    "DEFAULT_BACKEND",
    "DSPBackend",
    "active_backend",
    "active_profiler",
    "available_backends",
    "backend_info",
    "dispatch",
    "make_backend",
    "profile_stages",
    "resolve_backend",
    "set_backend",
    "use_backend",
]

#: the fallback selection when ``REPRO_BACKEND`` is unset
DEFAULT_BACKEND = "numpy"


def _make_numpy() -> DSPBackend:
    from repro.backend.numpy_ref import NumpyBackend

    return NumpyBackend()


def _make_numba() -> DSPBackend:
    from repro.backend.numba_accel import NumbaBackend

    return NumbaBackend()


#: registry: ``REPRO_BACKEND`` value -> backend factory (lazy imports)
BACKEND_FACTORIES: dict[str, Callable[[], DSPBackend]] = {
    "numpy": _make_numpy,
    "numba": _make_numba,
}

_active: DSPBackend | None = None
_profiler: StageProfiler | None = None


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted (all are constructible)."""
    return tuple(sorted(BACKEND_FACTORIES))


def resolve_backend(env: str = "REPRO_BACKEND") -> str:
    """The backend name selected by the environment (default ``numpy``).

    Raises ``ValueError`` naming the knob when the value is not a
    registered backend, so a typo fails loudly instead of silently
    benchmarking the wrong kernels.
    """
    raw = os.environ.get(env, "").strip().lower()
    if not raw:
        return DEFAULT_BACKEND
    if raw not in BACKEND_FACTORIES:
        raise ValueError(
            f"{env}={raw!r}: unknown backend; expected one of {sorted(BACKEND_FACTORIES)}"
        )
    return raw


def make_backend(name: str) -> DSPBackend:
    """Construct a backend by registry name (never cached, never global)."""
    try:
        factory = BACKEND_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {sorted(BACKEND_FACTORIES)}"
        ) from None
    return factory()


def active_backend() -> DSPBackend:
    """The backend the primitives currently dispatch to.

    Resolved lazily from ``REPRO_BACKEND`` on first use; fork-based pool
    workers inherit the parent's selection.
    """
    global _active
    if _active is None:
        _active = make_backend(resolve_backend())
    return _active


def set_backend(backend: str | DSPBackend) -> DSPBackend:
    """Select the process-wide active backend; returns it."""
    global _active
    _active = make_backend(backend) if isinstance(backend, str) else backend
    return _active


@contextmanager
def use_backend(backend: str | DSPBackend | None) -> Iterator[DSPBackend]:
    """Scope a backend selection; ``None`` keeps the current one (no-op)."""
    global _active
    if backend is None:
        yield active_backend()
        return
    previous = _active
    _active = make_backend(backend) if isinstance(backend, str) else backend
    try:
        yield _active
    finally:
        _active = previous


def backend_info(backend: str | DSPBackend | None = None) -> dict[str, Any]:
    """Name + capability metadata of a backend (default: the active one)."""
    if backend is None:
        b = active_backend()
    elif isinstance(backend, str):
        b = make_backend(backend)
    else:
        b = backend
    return {"name": b.name, **b.capabilities()}


def active_profiler() -> StageProfiler | None:
    """The open stage profiler, if :func:`profile_stages` is active."""
    return _profiler


@contextmanager
def profile_stages(profiler: StageProfiler | None = None) -> Iterator[StageProfiler]:
    """Open a profiling scope: every dispatch inside records its stage."""
    global _profiler
    prof = profiler if profiler is not None else StageProfiler()
    previous = _profiler
    _profiler = prof
    try:
        yield prof
    finally:
        _profiler = previous


def dispatch(stage: str, method: str, *args: Any, **kwargs: Any) -> Any:
    """Route a validated primitive call to the active backend.

    ``stage`` names the profiler bucket; ``method`` is the
    :class:`DSPBackend` method to invoke.  When no profiler is open this
    is a plain attribute lookup and call — the overhead on the hot path
    is one dict read.
    """
    backend = active_backend()
    call = getattr(backend, method)
    if _profiler is None:
        return call(*args, **kwargs)
    with _profiler.stage(stage):
        return call(*args, **kwargs)
