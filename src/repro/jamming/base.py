"""Jammer interface.

A jammer, in the paper's attacker model (Section 2), has unlimited energy
but a fixed power budget: it can emit *any* waveform, as long as its power
stays at the budget.  The library therefore separates the two concerns:

* a :class:`Jammer` produces a **unit-power waveform** of arbitrary shape;
* the :class:`repro.channel.Medium` scales that waveform to the configured
  signal-to-jammer ratio (the power budget).

``waveform(num_samples, rng)`` may be called repeatedly; jammers that need
continuity across calls (hoppers, sweepers) keep their own phase/state.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Jammer", "NoJammer"]


class Jammer(abc.ABC):
    """Abstract base: a unit-power interference waveform source."""

    @abc.abstractmethod
    def waveform(self, num_samples: int, rng=None) -> np.ndarray:
        """Generate ``num_samples`` of unit-mean-power complex waveform."""

    @property
    def description(self) -> str:
        """Human-readable description used in reports and logs."""
        return type(self).__name__

    @property
    def is_stateful(self) -> bool:
        """Whether ``waveform`` output depends on earlier calls.

        Stateful jammers (hoppers, sweepers, tone phase continuity) must
        be driven strictly in packet order, so the link layer keeps them
        on the serial path and out of the result cache.  The conservative
        default is ``True``; memoryless jammers override to ``False``.
        """
        return True

    def reset(self) -> None:
        """Forget internal state (hop phase, sweep position).  Default no-op."""

    def spec(self) -> dict:
        """JSON-able construction spec of this jammer.

        The ``"type"`` field names the jammer in the string-keyed registry
        (:mod:`repro.jamming.registry`); the remaining fields are the
        constructor parameters.  ``jammer_from_spec(j.spec())`` rebuilds an
        equivalent jammer, which is what lets scenarios, caches and remote
        workers treat attackers as plain data.
        """
        raise NotImplementedError(f"{type(self).__name__} does not define spec()")

    @classmethod
    def from_spec(cls, spec: dict) -> "Jammer":
        """Rebuild a jammer from a :meth:`spec` mapping (sans validation).

        Prefer :func:`repro.jamming.registry.jammer_from_spec`, which
        resolves the ``"type"`` key and validates field names.
        """
        return cls(**{k: v for k, v in spec.items() if k != "type"})

    @staticmethod
    def _check_length(num_samples: int) -> int:
        if num_samples < 0:
            raise ValueError(f"num_samples must be >= 0, got {num_samples}")
        return int(num_samples)


class NoJammer(Jammer):
    """The benign channel: no interference at all.

    Exists so sweep code can treat "unjammed" uniformly; the medium skips
    a zero-power jammer entirely.
    """

    def waveform(self, num_samples: int, rng=None) -> np.ndarray:
        n = self._check_length(num_samples)
        return np.zeros(n, dtype=complex)

    @property
    def description(self) -> str:
        return "no jammer"

    @property
    def is_stateful(self) -> bool:
        return False

    def spec(self) -> dict:
        return {"type": "none"}
