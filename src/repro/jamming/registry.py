"""String-keyed jammer registry: specs in, attackers out.

Every jammer in the library carries a JSON-able construction spec
(:meth:`repro.jamming.base.Jammer.spec`) whose ``"type"`` field names the
class in this registry.  :func:`jammer_from_spec` inverts it, which turns
attacker models into plain data: a scenario file, a cache key, or a remote
worker can all describe "a 2.5 MHz noise jammer" identically without
shipping Python objects.

The registry is open — :func:`register_jammer` admits user-defined
attackers, after which their specs flow through scenarios and caches like
the built-in ones.
"""

from __future__ import annotations

import inspect

import numpy as np

from repro.jamming.adaptive import (
    FollowerJammer,
    LatentReactiveJammer,
    MultiToneJammer,
    RepeaterJammer,
)
from repro.jamming.base import Jammer, NoJammer
from repro.jamming.comb import CombJammer
from repro.jamming.hopping_jammer import HoppingJammer
from repro.jamming.misc import PulsedJammer, SweepJammer, ToneJammer
from repro.jamming.noise import BandlimitedNoiseJammer
from repro.jamming.reactive import MatchedReactiveJammer

__all__ = [
    "JAMMER_REGISTRY",
    "register_jammer",
    "jammer_from_spec",
    "jammer_names",
    "verify_spec_roundtrip",
]

#: registry key -> jammer class; keys are the ``"type"`` values of specs.
JAMMER_REGISTRY: dict[str, type[Jammer]] = {
    "none": NoJammer,
    "noise": BandlimitedNoiseJammer,
    "tone": ToneJammer,
    "sweep": SweepJammer,
    "pulsed": PulsedJammer,
    "comb": CombJammer,
    "hopping": HoppingJammer,
    "reactive": MatchedReactiveJammer,
    "latent-reactive": LatentReactiveJammer,
    "repeater": RepeaterJammer,
    "multitone": MultiToneJammer,
    "follower": FollowerJammer,
}


def jammer_names() -> list[str]:
    """Registered jammer type names, sorted."""
    return sorted(JAMMER_REGISTRY)


def register_jammer(name: str, cls: type[Jammer]) -> None:
    """Admit a jammer class under a new registry key.

    The class's ``spec()`` must return ``{"type": name, ...}`` for specs
    to round-trip; re-registering an existing key is rejected so library
    names stay stable.
    """
    key = str(name).lower()
    if key in JAMMER_REGISTRY:
        raise ValueError(f"jammer type {key!r} is already registered")
    if not (isinstance(cls, type) and issubclass(cls, Jammer)):
        raise TypeError("cls must be a Jammer subclass")
    JAMMER_REGISTRY[key] = cls


def _accepted_parameters(cls: type[Jammer]) -> set[str]:
    return set(inspect.signature(cls.__init__).parameters) - {"self"}


def _inject_sample_rate(params: dict, sample_rate: float) -> None:
    """Recursively default ``sample_rate`` into nested ``"inner"`` specs.

    Wrapper jammers (pulsed-in-pulsed, and any future composite) carry
    their wrapped jammer as an ``"inner"`` spec mapping; every level that
    accepts a ``sample_rate`` inherits the link's rate unless the spec
    pins its own.  Recursing (rather than patching one level) is what
    lets arbitrarily nested wrappers ride a scenario's rate.
    """
    inner = params.get("inner")
    if not isinstance(inner, dict):
        return
    inner = dict(inner)
    params["inner"] = inner
    inner_type = inner.get("type")
    if isinstance(inner_type, str) and inner_type.lower() in JAMMER_REGISTRY:
        inner_cls = JAMMER_REGISTRY[inner_type.lower()]
        if "sample_rate" in _accepted_parameters(inner_cls):
            inner.setdefault("sample_rate", float(sample_rate))
    _inject_sample_rate(inner, sample_rate)


def jammer_from_spec(spec: dict | Jammer, sample_rate: float | None = None) -> Jammer:
    """Build a jammer from a registry spec mapping.

    ``spec`` must carry a registered ``"type"``; the remaining fields are
    the constructor parameters, validated by name so typos fail with the
    offending field spelled out.  ``sample_rate`` is injected as a default
    wherever the class accepts one, so scenario specs can omit it and
    inherit the link's rate.  An existing :class:`Jammer` passes through.
    """
    if isinstance(spec, Jammer):
        return spec
    if not isinstance(spec, dict):
        raise ValueError(f"jammer spec must be a mapping, got {type(spec).__name__}")
    if "type" not in spec:
        raise ValueError("jammer spec must contain a 'type' field")
    name = spec["type"]
    if not isinstance(name, str) or name.lower() not in JAMMER_REGISTRY:
        raise ValueError(
            f"unknown jammer type {name!r}; registered types: {jammer_names()}"
        )
    cls = JAMMER_REGISTRY[name.lower()]
    params = {k: v for k, v in spec.items() if k != "type"}
    accepted = _accepted_parameters(cls)
    unknown = set(params) - accepted
    if unknown:
        raise ValueError(
            f"jammer spec field(s) {sorted(unknown)} not recognized for type {name!r}; "
            f"accepted: {sorted(accepted)}"
        )
    if sample_rate is not None:
        if "sample_rate" in accepted:
            params.setdefault("sample_rate", float(sample_rate))
        _inject_sample_rate(params, sample_rate)
    try:
        return cls.from_spec({"type": name, **params})
    except TypeError as exc:
        raise ValueError(f"jammer spec for type {name!r} is incomplete: {exc}") from None


def _spec_values_equal(a: object, b: object) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return bool(np.array_equal(np.asarray(a), np.asarray(b)))
    return bool(a == b)


def verify_spec_roundtrip(jammer: Jammer, sample_rate: float | None = None) -> dict:
    """Audit that a jammer's ``spec()`` loses no constructor field.

    Rebuilds the jammer from its own spec and fails with a *field-named*
    error when (a) the rebuilt instance's spec drifts from the original,
    or (b) a constructor parameter absent from the spec has a different
    value on the rebuilt instance — the signature of a field silently
    dropped by ``spec()``.  Returns the validated spec on success.
    """
    spec = jammer.spec()
    rebuilt = jammer_from_spec(spec, sample_rate=sample_rate)
    rebuilt_spec = rebuilt.spec()
    if rebuilt_spec != spec:
        drifted = sorted(
            k
            for k in set(spec) | set(rebuilt_spec)
            if not _spec_values_equal(spec.get(k), rebuilt_spec.get(k))
        )
        raise ValueError(
            f"{type(jammer).__name__}.spec() does not round-trip; "
            f"field(s) {drifted} drift on rebuild"
        )
    for name in sorted(_accepted_parameters(type(jammer)) - set(spec)):
        if not (hasattr(jammer, name) and hasattr(rebuilt, name)):
            continue
        if not _spec_values_equal(getattr(jammer, name), getattr(rebuilt, name)):
            raise ValueError(
                f"{type(jammer).__name__}.spec() silently drops constructor "
                f"field {name!r} (value {getattr(jammer, name)!r} lost on rebuild)"
            )
    return spec
