"""Learning/follower jammer: online band estimation over a noisy sensor.

Wiese & Papadimitratos (arXiv 1512.06645) argue that hopping *alone* buys
no resilience against an adversary that can learn the hop process.  This
attacker makes that argument executable: it observes each packet's hop
decisions through a noisy sensing channel and maintains an exponentially
weighted estimate of the victim's bandwidth in the log2 (octave) domain —
the natural axis of the paper's octave-spaced hop set.  Each packet it
jams at its *current* estimate, then folds the new observation in.

Against a static-bandwidth victim the estimate converges to the true
band (up to the sensing-noise floor) and the jammer approaches the
matched attacker no filtering can beat.  Against randomized bandwidth
hopping the estimate chases a moving target and stays dispersed across
the hop range — exactly the attacker/defender boundary the differential
test wall gates.
"""

from __future__ import annotations

import numpy as np

from repro.jamming.adaptive.base import VictimAwareJammer
from repro.jamming.noise import bandlimited_noise
from repro.utils.rng import make_rng
from repro.utils.validation import ensure_in_range, ensure_non_negative, ensure_positive

__all__ = ["FollowerJammer"]

#: dB per factor-of-two of bandwidth: converts a dB-domain sensing error
#: standard deviation into the log2 (octave) domain the filter runs in.
_DB_PER_OCTAVE = 10.0 * np.log10(2.0)


class FollowerJammer(VictimAwareJammer):
    """EWMA band-estimating jammer behind a noisy sensing channel.

    Parameters
    ----------
    sample_rate:
        Baseband sample rate in Hz.
    initial_bandwidth:
        Band estimate before the first observation, in Hz.
    learning_rate:
        EWMA weight of each new observation in (0, 1]; 1 trusts only the
        latest dwell, small values average over many packets.
    sense_noise_db:
        Standard deviation of the sensing channel's bandwidth-measurement
        error in dB (0 = a perfect sensor).
    min_bandwidth, max_bandwidth:
        Optional clamp on the estimate in Hz, modeling an attacker that
        knows the victim's advertised hop range.
    """

    def __init__(
        self,
        sample_rate: float,
        initial_bandwidth: float,
        learning_rate: float = 0.5,
        sense_noise_db: float = 1.0,
        min_bandwidth: float | None = None,
        max_bandwidth: float | None = None,
    ) -> None:
        super().__init__()
        self.sample_rate = ensure_positive(sample_rate, "sample_rate")
        self.initial_bandwidth = ensure_positive(initial_bandwidth, "initial_bandwidth")
        self.learning_rate = ensure_in_range(learning_rate, 1e-6, 1.0, "learning_rate")
        self.sense_noise_db = float(ensure_non_negative(sense_noise_db, "sense_noise_db"))
        if min_bandwidth is not None:
            min_bandwidth = ensure_positive(min_bandwidth, "min_bandwidth")
        if max_bandwidth is not None:
            max_bandwidth = ensure_positive(max_bandwidth, "max_bandwidth")
        if min_bandwidth is not None and max_bandwidth is not None and min_bandwidth > max_bandwidth:
            raise ValueError("min_bandwidth must not exceed max_bandwidth")
        self.min_bandwidth = min_bandwidth
        self.max_bandwidth = max_bandwidth
        self._log_estimate = float(np.log2(self.initial_bandwidth))
        self.estimate_history: list[float] = []

    @property
    def bandwidth_estimate(self) -> float:
        """The jammer's current victim-bandwidth estimate in Hz."""
        return float(2.0 ** self._log_estimate)

    def reset(self) -> None:
        super().reset()
        self._log_estimate = float(np.log2(self.initial_bandwidth))
        self.estimate_history = []

    def _clamp(self, log_estimate: float) -> float:
        if self.min_bandwidth is not None:
            log_estimate = max(log_estimate, float(np.log2(self.min_bandwidth)))
        if self.max_bandwidth is not None:
            log_estimate = min(log_estimate, float(np.log2(self.max_bandwidth)))
        return log_estimate

    def _learn(self, gen: np.random.Generator) -> None:
        """Fold the pending observation into the band estimate.

        Each dwell of the observed profile is one noisy measurement:
        the true log2-bandwidth plus Gaussian sensing error.  The draw
        count is a deterministic function of the profile, so the stream
        position stays reproducible across serial/batched/pool drivers.
        """
        sigma = self.sense_noise_db / _DB_PER_OCTAVE
        for _length, bw in self._victim_profile:
            measured = float(np.log2(bw)) + sigma * float(gen.standard_normal())
            self._log_estimate = self._clamp(
                (1.0 - self.learning_rate) * self._log_estimate
                + self.learning_rate * measured
            )

    def waveform(self, num_samples: int, rng=None) -> np.ndarray:
        n = self._check_length(num_samples)
        gen = make_rng(rng)
        # Emit at the *pre-observation* estimate — the jammer cannot see
        # the current packet's hops before jamming it — then learn.
        out = bandlimited_noise(n, self.bandwidth_estimate, self.sample_rate, gen)
        self._learn(gen)
        self.estimate_history.append(self.bandwidth_estimate)
        return out

    def spec(self) -> dict:
        return {
            "type": "follower",
            "sample_rate": float(self.sample_rate),
            "initial_bandwidth": float(self.initial_bandwidth),
            "learning_rate": float(self.learning_rate),
            "sense_noise_db": float(self.sense_noise_db),
            "min_bandwidth": None if self.min_bandwidth is None else float(self.min_bandwidth),
            "max_bandwidth": None if self.max_bandwidth is None else float(self.max_bandwidth),
        }

    @property
    def description(self) -> str:
        return (
            f"follower jammer (estimate {self.bandwidth_estimate / 1e6:.4g} MHz, "
            f"lr {self.learning_rate:g})"
        )

    @property
    def is_stateful(self) -> bool:
        # The band estimate evolves across packets: packet order matters,
        # so the link layer keeps this jammer serial and uncached.
        return True
