"""Reactive jammer with an explicit detect-then-jam loop.

Where :class:`~repro.jamming.reactive.MatchedReactiveJammer` abstracts the
sensing stage away (it is handed the bandwidth profile and only models the
reaction *delay*), this attacker models the detection itself: a windowed
energy detector runs over the victim's observed waveform, and jamming
starts only ``turnaround_samples`` after the detector first fires — the
sense/decide/switch latency every real reactive jammer pays (the
SDR-based reactive jammers the paper cites measure tens of microseconds).

Before the turnaround elapses the output is *exactly zero*: the medium
skips zero-power sources, so the head of the packet is genuinely
unjammed.  The energy the jammer saves while silent is spent on the tail
— the emitted burst is boosted so the *whole-packet* average power stays
at unity, the paper's budgeted-power attacker model.
"""

from __future__ import annotations

import numpy as np

from repro.jamming.adaptive.base import VictimAwareJammer
from repro.jamming.noise import bandlimited_noise
from repro.utils.units import db_to_linear
from repro.utils.validation import ensure_non_negative, ensure_positive

__all__ = ["LatentReactiveJammer"]


class LatentReactiveJammer(VictimAwareJammer):
    """Energy-detecting reactive jammer with turnaround latency.

    Parameters
    ----------
    sample_rate:
        Baseband sample rate in Hz.
    bandwidth:
        Two-sided bandwidth of the emitted noise burst in Hz.
    threshold_db:
        Detection threshold relative to the observed packet's mean power:
        the detector fires at the first sample whose trailing
        ``sense_window``-sample mean energy reaches this level.
    sense_window:
        Energy-detector integration window in samples.
    turnaround_samples:
        Sense/decide/switch latency: jamming starts this many samples
        after the detector fires.  More turnaround ⇒ a longer unjammed
        head (never shorter), which is the monotonicity the property
        tests gate.
    """

    def __init__(
        self,
        sample_rate: float,
        bandwidth: float,
        threshold_db: float = -6.0,
        sense_window: int = 64,
        turnaround_samples: int = 256,
    ) -> None:
        super().__init__()
        self.sample_rate = ensure_positive(sample_rate, "sample_rate")
        self.bandwidth = ensure_positive(bandwidth, "bandwidth")
        self.threshold_db = float(threshold_db)
        self.sense_window = int(ensure_positive(sense_window, "sense_window"))
        self.turnaround_samples = int(
            ensure_non_negative(turnaround_samples, "turnaround_samples")
        )

    def detect_index(self) -> int | None:
        """First sample index at which the energy detector fires.

        ``None`` when nothing was observed, the observation is silent, or
        no window ever reaches the threshold.
        """
        if self._victim_wave is None or self._victim_wave.size == 0:
            return None
        power = np.abs(self._victim_wave) ** 2
        mean = float(power.mean())
        if mean <= 0.0:
            return None
        w = min(self.sense_window, power.size)
        csum = np.cumsum(power)
        windowed = (csum[w - 1 :] - np.concatenate(([0.0], csum[:-w]))) / w
        hits = np.flatnonzero(windowed >= mean * db_to_linear(self.threshold_db))
        if hits.size == 0:
            return None
        return int(hits[0]) + w - 1

    def jam_start(self, num_samples: int) -> int:
        """First jammed sample index (``num_samples`` = never jams)."""
        detect = self.detect_index()
        if detect is None:
            return num_samples
        return min(detect + self.turnaround_samples, num_samples)

    def waveform(self, num_samples: int, rng=None) -> np.ndarray:
        n = self._check_length(num_samples)
        start = self.jam_start(n)
        out = np.zeros(n, dtype=complex)
        tail = n - start
        if tail > 0:
            burst = bandlimited_noise(tail, self.bandwidth, self.sample_rate, rng)
            # Silence saved during the head is spent on the burst: the
            # whole-packet average power stays at the unit budget.
            out[start:] = burst * np.sqrt(n / tail)
        return out

    def spec(self) -> dict:
        return {
            "type": "latent-reactive",
            "sample_rate": float(self.sample_rate),
            "bandwidth": float(self.bandwidth),
            "threshold_db": float(self.threshold_db),
            "sense_window": int(self.sense_window),
            "turnaround_samples": int(self.turnaround_samples),
        }

    @property
    def description(self) -> str:
        tau_us = self.turnaround_samples / self.sample_rate * 1e6
        return (
            f"latent reactive jammer (turnaround {tau_us:.3g} us, "
            f"Bj = {self.bandwidth / 1e6:.4g} MHz)"
        )

    @property
    def is_stateful(self) -> bool:
        # The observation is replaced per packet by the drivers and the
        # burst draws fresh noise from the supplied stream, so packets
        # are order-free: chunking and caching stay allowed.
        return False
