"""Optimal multi-tone jammer for a known or estimated hop range.

Multi-tone jamming against spread spectrum (cf. the optimal-tone analyses
of arXiv 2602.06816 / 1911.10462) concentrates the power budget into K
discrete tones.  Against a *bandwidth-hopping* victim whose hop range is
known, the worst-case-optimal placement under a unit power budget puts
every tone inside the narrowest hop bandwidth: any tone outside it is
wasted whenever the victim picks a narrow hop, while tones inside the
narrowest band land in-band for *every* hop choice.  The K tones are
spread uniformly across that placement band so the receiver's excision
filter cannot notch them all with one stopband.

Tone phases are drawn fresh per call from the supplied RNG stream (a
real attacker's oscillators are not packet-locked), so the jammer is
memoryless and batch/pool chunking stays exact.
"""

from __future__ import annotations

import numpy as np

from repro.jamming.base import Jammer
from repro.utils.rng import make_rng
from repro.utils.units import normalize_power
from repro.utils.validation import ensure_positive

__all__ = ["MultiToneJammer"]


class MultiToneJammer(Jammer):
    """K equal-power tones packed into a hop-range-aware placement band.

    Parameters
    ----------
    sample_rate:
        Baseband sample rate in Hz.
    placement_bandwidth:
        Two-sided band the tones are confined to, in Hz.  For the
        worst-case-optimal attack against a known hop range this is the
        *narrowest* hop bandwidth (see :meth:`for_hop_range`).
    num_tones:
        Number of tones K; the budget is split equally.
    """

    def __init__(
        self,
        sample_rate: float,
        placement_bandwidth: float,
        num_tones: int = 4,
    ) -> None:
        self.sample_rate = ensure_positive(sample_rate, "sample_rate")
        self.placement_bandwidth = ensure_positive(placement_bandwidth, "placement_bandwidth")
        if placement_bandwidth > sample_rate:
            raise ValueError(
                f"placement_bandwidth {placement_bandwidth} exceeds the sample rate"
            )
        self.num_tones = int(ensure_positive(num_tones, "num_tones"))

    @classmethod
    def for_hop_range(
        cls, sample_rate: float, bandwidths, num_tones: int = 4
    ) -> "MultiToneJammer":
        """The optimal placement against a victim hopping over ``bandwidths``.

        Every tone is confined to the narrowest hop bandwidth, so the
        full budget is in-band whatever the victim picks.
        """
        bws = [float(b) for b in bandwidths]
        if not bws:
            raise ValueError("bandwidths must be non-empty")
        return cls(sample_rate, min(bws), num_tones)

    def tone_frequencies(self) -> np.ndarray:
        """Tone centre frequencies in Hz, uniform inside the placement band."""
        k = np.arange(self.num_tones, dtype=float)
        return self.placement_bandwidth * ((k + 1.0) / (self.num_tones + 1.0) - 0.5)

    def waveform(self, num_samples: int, rng=None) -> np.ndarray:
        n = self._check_length(num_samples)
        gen = make_rng(rng)
        phases = gen.uniform(0.0, 2.0 * np.pi, self.num_tones)
        if n == 0:
            return np.zeros(0, dtype=complex)
        t = np.arange(n) / self.sample_rate
        out = np.zeros(n, dtype=complex)
        for freq, phase in zip(self.tone_frequencies(), phases):
            out += np.exp(1j * (2.0 * np.pi * freq * t + phase))
        return normalize_power(out)

    def spec(self) -> dict:
        return {
            "type": "multitone",
            "sample_rate": float(self.sample_rate),
            "placement_bandwidth": float(self.placement_bandwidth),
            "num_tones": int(self.num_tones),
        }

    @property
    def description(self) -> str:
        return (
            f"multi-tone jammer ({self.num_tones} tones in "
            f"{self.placement_bandwidth / 1e6:.4g} MHz)"
        )

    @property
    def is_stateful(self) -> bool:
        return False
