"""Convolution/repeater attack: replay the victim's own waveform.

Harshan & Hu (arXiv 1903.11261) show that a full-duplex adversary which
instantaneously *convolves* the victim's signal with a filter and
re-radiates it defeats frequency hopping outright — the attack energy
lands in-band by construction, whatever band the victim hops to, because
the jamming waveform *is* the victim's waveform.  This class models that
attacker at baseband: the observed packet is passed through an optional
random repeat filter, delayed by the adversary's processing/propagation
latency, re-normalized to the unit power budget, and re-emitted.

With ``num_taps=1`` (the default) the output is exactly a delayed, scaled
copy of the victim waveform — the differential test wall's semantic gate.
Longer filters draw fresh complex-Gaussian taps from the per-packet RNG
substream, modeling the unknown adversary-to-receiver channel.
"""

from __future__ import annotations

import numpy as np

from repro.jamming.adaptive.base import VictimAwareJammer
from repro.utils.rng import make_rng
from repro.utils.units import normalize_power, signal_power
from repro.utils.validation import ensure_non_negative, ensure_positive

__all__ = ["RepeaterJammer"]


class RepeaterJammer(VictimAwareJammer):
    """Replay the victim's waveform with delay, filtering, and unit gain.

    Parameters
    ----------
    delay_samples:
        Adversary processing + propagation latency in samples; the head
        of the emitted waveform is zero for this long.
    num_taps:
        Length of the random repeat filter.  ``1`` re-emits a pure
        delayed copy; longer filters convolve the victim signal with
        complex-Gaussian taps drawn fresh per packet from the supplied
        RNG stream.
    """

    def __init__(self, delay_samples: int = 64, num_taps: int = 1) -> None:
        super().__init__()
        self.delay_samples = int(ensure_non_negative(delay_samples, "delay_samples"))
        self.num_taps = int(ensure_positive(num_taps, "num_taps"))

    def waveform(self, num_samples: int, rng=None) -> np.ndarray:
        n = self._check_length(num_samples)
        gen = make_rng(rng)
        # Draw the repeat filter before anything else so the stream
        # position is independent of the victim's observation.
        if self.num_taps > 1:
            taps = (
                gen.standard_normal(self.num_taps)
                + 1j * gen.standard_normal(self.num_taps)
            ) / np.sqrt(2.0 * self.num_taps)
        else:
            taps = None
        out = np.zeros(n, dtype=complex)
        victim = self._victim_wave
        if victim is None or victim.size == 0 or n == 0:
            return out
        if taps is not None:
            replay = np.convolve(victim, taps)[: victim.size]
        else:
            replay = victim
        keep = min(n - self.delay_samples, replay.size)
        if keep <= 0:
            return out
        out[self.delay_samples : self.delay_samples + keep] = replay[:keep]
        if signal_power(out) <= 0.0:
            return out
        return normalize_power(out)

    def spec(self) -> dict:
        return {
            "type": "repeater",
            "delay_samples": int(self.delay_samples),
            "num_taps": int(self.num_taps),
        }

    @property
    def description(self) -> str:
        return (
            f"repeater jammer (delay {self.delay_samples} samples, "
            f"{self.num_taps}-tap repeat filter)"
        )

    @property
    def is_stateful(self) -> bool:
        # Observation replaced per packet, filter taps drawn per packet:
        # nothing carries across calls.
        return False
