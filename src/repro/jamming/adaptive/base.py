"""Victim-aware jammer base class.

The adaptive attackers of the zoo (latent-reactive, repeater, follower)
all need to *sense* the victim's transmission before emitting: energy
detection needs the waveform, band estimation needs the bandwidth
profile.  :class:`VictimAwareJammer` is the contract between those
attackers and the link drivers — :func:`repro.core.paths.draw_jammer_wave`
calls :meth:`observe_victim` with the packet's air waveform and bandwidth
profile immediately before drawing the jammer waveform, on the serial,
batched, and network paths alike, so the observation is always exactly
one packet old state-wise and the per-packet ``child_rng`` substream
contract is untouched.

Wrapping a victim-aware jammer inside a :class:`~repro.jamming.misc.PulsedJammer`
hides it from the drivers (only the outermost jammer is observed); compose
the other way around if duty cycling is wanted.
"""

from __future__ import annotations

import numpy as np

from repro.jamming.base import Jammer

__all__ = ["VictimAwareJammer"]


class VictimAwareJammer(Jammer):
    """A jammer that senses the victim's packet before emitting.

    Subclasses read the stored observation (``self._victim_wave``,
    ``self._victim_profile``) inside :meth:`waveform`.  The observation is
    *replaced* on every call to :meth:`observe_victim`, so per-packet
    attackers stay memoryless; attackers that learn across packets (the
    follower) fold the observation into their own state and declare
    ``is_stateful = True``.
    """

    def __init__(self) -> None:
        self._victim_wave: np.ndarray | None = None
        self._victim_profile: list[tuple[int, float]] = []

    def observe_victim(
        self, waveform: np.ndarray, profile: list[tuple[int, float]]
    ) -> None:
        """Record the victim packet about to be transmitted.

        ``waveform`` is the victim's air waveform (what a co-located
        sensing receiver captures); ``profile`` is its bandwidth profile
        as ``(num_samples, bandwidth_hz)`` segments in transmission
        order.  Replaces any previous observation.
        """
        for length, bw in profile:
            if length < 0:
                raise ValueError("segment lengths must be >= 0")
            if bw <= 0:
                raise ValueError("segment bandwidths must be positive")
        self._victim_wave = np.asarray(waveform, dtype=complex)
        self._victim_profile = [(int(n), float(bw)) for n, bw in profile]

    def reset(self) -> None:
        """Forget the stored observation (and any learned state)."""
        self._victim_wave = None
        self._victim_profile = []
