"""Adversary zoo v2: adaptive, sensing-driven attackers.

The classic zoo (:mod:`repro.jamming`) emits waveforms blind to the
victim; the adaptive zoo senses the victim's transmission and reacts —
energy-detect-then-jam (:class:`LatentReactiveJammer`), replay the
victim's own waveform (:class:`RepeaterJammer`), learn the hop process
online (:class:`FollowerJammer`) — or optimizes its placement against a
known hop range (:class:`MultiToneJammer`).  All are registry-backed and
spec-serializable like the rest of the zoo; randomness flows only through
the per-packet ``child_rng`` substreams, so the serial, batched, and
pool drivers stay bit-identical.
"""

from repro.jamming.adaptive.base import VictimAwareJammer
from repro.jamming.adaptive.follower import FollowerJammer
from repro.jamming.adaptive.latent_reactive import LatentReactiveJammer
from repro.jamming.adaptive.multitone import MultiToneJammer
from repro.jamming.adaptive.repeater import RepeaterJammer

__all__ = [
    "VictimAwareJammer",
    "LatentReactiveJammer",
    "RepeaterJammer",
    "MultiToneJammer",
    "FollowerJammer",
]
