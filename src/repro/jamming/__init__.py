"""Jammer models: fixed-band noise, reactive bandwidth-matching, hopping,
tone, sweep, pulsed, and adaptive sensing-driven attackers."""

from repro.jamming.base import Jammer, NoJammer
from repro.jamming.noise import BandlimitedNoiseJammer, bandlimited_noise
from repro.jamming.reactive import MatchedReactiveJammer
from repro.jamming.hopping_jammer import HoppingJammer
from repro.jamming.misc import PulsedJammer, SweepJammer, ToneJammer
from repro.jamming.comb import CombJammer
from repro.jamming.adaptive import (
    FollowerJammer,
    LatentReactiveJammer,
    MultiToneJammer,
    RepeaterJammer,
    VictimAwareJammer,
)
from repro.jamming.registry import (
    JAMMER_REGISTRY,
    jammer_from_spec,
    jammer_names,
    register_jammer,
    verify_spec_roundtrip,
)

__all__ = [
    "Jammer",
    "NoJammer",
    "BandlimitedNoiseJammer",
    "bandlimited_noise",
    "MatchedReactiveJammer",
    "HoppingJammer",
    "ToneJammer",
    "SweepJammer",
    "PulsedJammer",
    "CombJammer",
    "VictimAwareJammer",
    "LatentReactiveJammer",
    "RepeaterJammer",
    "MultiToneJammer",
    "FollowerJammer",
    "JAMMER_REGISTRY",
    "jammer_from_spec",
    "jammer_names",
    "register_jammer",
    "verify_spec_roundtrip",
]
