"""Band-limited Gaussian noise jammers.

This is the paper's workhorse attacker: "The jammer emits a constant white
Gaussian noise signal with different bandwidths.  We generate a white
Gaussian noise signal by using a random Gaussian source ... and applying a
low pass filter on the signal" (Section 6.2).
"""

from __future__ import annotations

import numpy as np

from repro.channel.awgn import complex_awgn
from repro.dsp.fir import apply_fir, lowpass_taps
from repro.dsp.mixing import frequency_shift
from repro.jamming.base import Jammer
from repro.utils.rng import make_rng
from repro.utils.units import normalize_power
from repro.utils.validation import ensure_positive

__all__ = ["BandlimitedNoiseJammer", "bandlimited_noise"]

_TAPS_CACHE: dict[tuple[float, float, int], np.ndarray] = {}


def _cached_lowpass(cutoff: float, sample_rate: float, num_taps: int) -> np.ndarray:
    key = (float(cutoff), float(sample_rate), int(num_taps))
    taps = _TAPS_CACHE.get(key)
    if taps is None:
        taps = lowpass_taps(num_taps, cutoff, sample_rate)
        _TAPS_CACHE[key] = taps
    return taps


def bandlimited_noise(
    num_samples: int,
    bandwidth: float,
    sample_rate: float,
    rng=None,
    centre: float = 0.0,
    num_taps: int = 129,
) -> np.ndarray:
    """Unit-power complex Gaussian noise confined to ``bandwidth`` Hz.

    ``bandwidth`` is two-sided; the noise occupies
    ``[centre - B/2, centre + B/2]``.  A bandwidth at or above the sample
    rate degenerates to plain white noise (no filter).
    """
    if num_samples < 0:
        raise ValueError(f"num_samples must be >= 0, got {num_samples}")
    ensure_positive(bandwidth, "bandwidth")
    ensure_positive(sample_rate, "sample_rate")
    if num_samples == 0:
        return np.zeros(0, dtype=complex)
    gen = make_rng(rng)
    white = complex_awgn(num_samples, 1.0, gen)
    if bandwidth >= sample_rate:
        out = white
    else:
        taps = _cached_lowpass(bandwidth / 2.0, sample_rate, num_taps)
        out = apply_fir(white, taps, mode="compensated")
    if centre != 0.0:
        out = frequency_shift(out, centre, sample_rate)
    return normalize_power(out)


class BandlimitedNoiseJammer(Jammer):
    """Fixed-bandwidth Gaussian noise jammer (the ``Bj`` of the paper).

    Parameters
    ----------
    bandwidth:
        Two-sided jamming bandwidth in Hz.
    sample_rate:
        Baseband sample rate in Hz.
    centre:
        Centre frequency offset of the jamming band (0 = co-channel).
    num_taps:
        Shaping-filter length; longer = steeper band edges.
    """

    def __init__(self, bandwidth: float, sample_rate: float, centre: float = 0.0, num_taps: int = 129) -> None:
        self.bandwidth = ensure_positive(bandwidth, "bandwidth")
        self.sample_rate = ensure_positive(sample_rate, "sample_rate")
        if abs(centre) > sample_rate / 2:
            raise ValueError(f"centre {centre} outside the Nyquist band")
        self.centre = float(centre)
        self.num_taps = int(num_taps)

    def waveform(self, num_samples: int, rng=None) -> np.ndarray:
        n = self._check_length(num_samples)
        return bandlimited_noise(n, self.bandwidth, self.sample_rate, rng, self.centre, self.num_taps)

    def spec(self) -> dict:
        return {
            "type": "noise",
            "bandwidth": float(self.bandwidth),
            "sample_rate": float(self.sample_rate),
            "centre": float(self.centre),
            "num_taps": int(self.num_taps),
        }

    @property
    def description(self) -> str:
        return f"band-limited noise jammer (Bj = {self.bandwidth / 1e6:.4g} MHz)"

    @property
    def is_stateful(self) -> bool:
        # Every call draws fresh noise from the supplied stream; no
        # carry-over, so packet batches may be chunked and cached.
        return False
