"""Tone, sweep, and pulsed jammers.

Classic jammer archetypes beyond the paper's noise jammers.  They exercise
the receiver's control logic differently: the tone is the extreme
narrow-band case (excision filtering shines), the sweep smears a tone over
the band, and the pulsed jammer trades duty cycle for peak power.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.mixing import chirp
from repro.jamming.base import Jammer
from repro.utils.rng import make_rng
from repro.utils.validation import ensure_in_range, ensure_positive

__all__ = ["ToneJammer", "SweepJammer", "PulsedJammer"]


class ToneJammer(Jammer):
    """Continuous-wave tone at a fixed frequency offset.

    The phase is continuous across :meth:`waveform` calls so spectral
    estimates of long jamming runs show a clean line.
    """

    def __init__(self, frequency: float, sample_rate: float) -> None:
        self.sample_rate = ensure_positive(sample_rate, "sample_rate")
        if abs(frequency) > sample_rate / 2:
            raise ValueError(f"frequency {frequency} outside the Nyquist band")
        self.frequency = float(frequency)
        self._phase = 0.0

    def reset(self) -> None:
        self._phase = 0.0

    def waveform(self, num_samples: int, rng=None) -> np.ndarray:
        n = self._check_length(num_samples)
        k = np.arange(n)
        step = 2 * np.pi * self.frequency / self.sample_rate
        out = np.exp(1j * (self._phase + step * k))
        self._phase = float((self._phase + step * n) % (2 * np.pi))
        return out

    def spec(self) -> dict:
        return {
            "type": "tone",
            "frequency": float(self.frequency),
            "sample_rate": float(self.sample_rate),
        }

    @property
    def description(self) -> str:
        return f"tone jammer at {self.frequency / 1e6:.4g} MHz"


class SweepJammer(Jammer):
    """Linear chirp sweeping repeatedly across a band.

    Parameters
    ----------
    f_start, f_stop:
        Sweep band edges in Hz.
    sweep_duration:
        Time of one sweep in seconds; the sweep restarts at ``f_start``
        when it reaches ``f_stop`` (sawtooth).
    """

    def __init__(self, f_start: float, f_stop: float, sample_rate: float, sweep_duration: float) -> None:
        self.sample_rate = ensure_positive(sample_rate, "sample_rate")
        if f_stop <= f_start:
            raise ValueError("f_stop must exceed f_start")
        if max(abs(f_start), abs(f_stop)) > sample_rate / 2:
            raise ValueError("sweep band outside the Nyquist band")
        ensure_positive(sweep_duration, "sweep_duration")
        self.f_start = float(f_start)
        self.f_stop = float(f_stop)
        self.sweep_duration = float(sweep_duration)
        self.sweep_samples = max(int(round(sweep_duration * sample_rate)), 2)
        self._position = 0

    def reset(self) -> None:
        self._position = 0

    def waveform(self, num_samples: int, rng=None) -> np.ndarray:
        n = self._check_length(num_samples)
        one_sweep = chirp(self.sweep_samples, self.f_start, self.f_stop, self.sample_rate)
        idx = (self._position + np.arange(n)) % self.sweep_samples
        self._position = (self._position + n) % self.sweep_samples
        return one_sweep[idx]

    def spec(self) -> dict:
        return {
            "type": "sweep",
            "f_start": float(self.f_start),
            "f_stop": float(self.f_stop),
            "sample_rate": float(self.sample_rate),
            "sweep_duration": float(self.sweep_duration),
        }

    @property
    def description(self) -> str:
        return (
            f"sweep jammer {self.f_start / 1e6:.4g}..{self.f_stop / 1e6:.4g} MHz"
        )


class PulsedJammer(Jammer):
    """Duty-cycled wrapper around another jammer.

    During the on-time the inner jammer's waveform is boosted by
    ``1/duty_cycle`` in power so the *average* power stays at unity — the
    budgeted-power attacker concentrating energy in bursts.
    """

    def __init__(self, inner: Jammer, duty_cycle: float, period_samples: int) -> None:
        if not isinstance(inner, Jammer):
            raise TypeError("inner must be a Jammer")
        ensure_in_range(duty_cycle, 1e-6, 1.0, "duty_cycle")
        if period_samples < 2:
            raise ValueError(f"period_samples must be >= 2, got {period_samples}")
        self.inner = inner
        self.duty_cycle = float(duty_cycle)
        self.period_samples = int(period_samples)
        self._position = 0

    def reset(self) -> None:
        self._position = 0
        self.inner.reset()

    def waveform(self, num_samples: int, rng=None) -> np.ndarray:
        n = self._check_length(num_samples)
        base = self.inner.waveform(n, make_rng(rng))
        on_len = max(int(round(self.duty_cycle * self.period_samples)), 1)
        phase = (self._position + np.arange(n)) % self.period_samples
        gate = (phase < on_len).astype(float)
        self._position = (self._position + n) % self.period_samples
        boost = np.sqrt(self.period_samples / on_len)
        return base * gate * boost

    def spec(self) -> dict:
        return {
            "type": "pulsed",
            "inner": self.inner.spec(),
            "duty_cycle": float(self.duty_cycle),
            "period_samples": int(self.period_samples),
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "PulsedJammer":
        from repro.jamming.registry import jammer_from_spec

        params = {k: v for k, v in spec.items() if k != "type"}
        inner = params.pop("inner", None)
        if not isinstance(inner, (dict, Jammer)):
            raise ValueError("pulsed jammer spec field 'inner' must be a jammer spec mapping")
        if isinstance(inner, dict):
            inner = jammer_from_spec(inner)
        return cls(inner=inner, **params)

    @property
    def description(self) -> str:
        return f"pulsed ({self.duty_cycle:.2f} duty) {self.inner.description}"
