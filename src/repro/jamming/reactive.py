"""Reactive jammer that matches the observed signal bandwidth with a delay.

Section 2's strong attacker: a reactive jammer senses the transmission and
"reacts with an AWGN signal that interferes at the receiver with the same
bandwidth as the target signal" — but only after its reaction time τ,
which is lower-bounded by propagation plus processing delay (at least a
couple of symbols, per the paper's reference measurements).

Against a *fixed-bandwidth* system this attacker is devastating: after one
reaction time it is perfectly matched and no filtering helps.  Against a
BHSS transmitter hopping faster than τ, the jammer is permanently matched
to the *previous* hop's bandwidth, which is exactly the bandwidth-offset
condition BHSS exploits.
"""

from __future__ import annotations

import numpy as np

from repro.jamming.base import Jammer
from repro.jamming.noise import bandlimited_noise
from repro.utils.rng import make_rng
from repro.utils.validation import ensure_non_negative, ensure_positive

__all__ = ["MatchedReactiveJammer"]


class MatchedReactiveJammer(Jammer):
    """Bandwidth-matching reactive jammer.

    The jammer observes the transmitted signal's instantaneous bandwidth
    profile — supplied by the link simulator via :meth:`observe` as
    ``(duration_samples, bandwidth_hz)`` segments, which is what a
    spectrum-sensing attacker recovers over the air — and emits noise
    matched to the bandwidth that was on the air ``reaction_samples`` ago.
    Before anything has been observed it jams at ``initial_bandwidth``.

    Parameters
    ----------
    sample_rate:
        Baseband sample rate in Hz.
    reaction_samples:
        Reaction time τ in samples (sensing + processing + propagation).
    initial_bandwidth:
        Bandwidth assumed before the first observation arrives.
    reaction_fraction:
        Alternative reaction model: instead of a fixed τ, the jammer needs
        this *fraction of each hop dwell* to estimate the new bandwidth
        (a bandwidth estimate takes a couple of symbols — and a symbol's
        duration scales with the hop bandwidth, so the estimation time
        scales with the dwell).  During the un-estimated head of a dwell
        it keeps jamming at the previous dwell's bandwidth.  When set,
        ``reaction_samples`` is added on top (use 0 for pure-fraction).
    """

    def __init__(
        self,
        sample_rate: float,
        reaction_samples: int,
        initial_bandwidth: float,
        reaction_fraction: float | None = None,
    ) -> None:
        self.sample_rate = ensure_positive(sample_rate, "sample_rate")
        self.reaction_samples = int(ensure_non_negative(reaction_samples, "reaction_samples"))
        self.initial_bandwidth = ensure_positive(initial_bandwidth, "initial_bandwidth")
        if reaction_fraction is not None and not 0.0 <= reaction_fraction <= 1.0:
            raise ValueError(f"reaction_fraction must be in [0, 1], got {reaction_fraction}")
        self.reaction_fraction = reaction_fraction
        self._profile: list[tuple[int, float]] = []

    def observe(self, segments: list[tuple[int, float]]) -> None:
        """Record the transmitted bandwidth profile for the coming packet.

        ``segments`` is a list of ``(num_samples, bandwidth_hz)`` pairs in
        transmission order, replacing any previous observation.
        """
        for length, bw in segments:
            if length < 0:
                raise ValueError("segment lengths must be >= 0")
            if bw <= 0:
                raise ValueError("segment bandwidths must be positive")
        self._profile = [(int(n), float(bw)) for n, bw in segments]

    def reset(self) -> None:
        self._profile = []

    def _effective_profile(self) -> list[tuple[int, float]]:
        """The observed profile with per-dwell estimation delays applied.

        With ``reaction_fraction`` set, the head of each dwell still
        carries the *previous* dwell's bandwidth — the jammer has not yet
        estimated the new one.
        """
        if self.reaction_fraction is None or not self._profile:
            return list(self._profile)
        out: list[tuple[int, float]] = []
        previous_bw = self.initial_bandwidth
        for length, bw in self._profile:
            head = int(round(self.reaction_fraction * length))
            head = min(head, length)
            if head > 0:
                out.append((head, previous_bw))
            if length - head > 0:
                out.append((length - head, bw))
            previous_bw = bw
        return out

    def _bandwidth_profile(self, num_samples: int) -> list[tuple[int, float]]:
        """Jammed-bandwidth segments for the next ``num_samples`` samples.

        The (delay-adjusted) observed profile is shifted right by the
        fixed reaction time; the head is filled with
        ``initial_bandwidth``.
        """
        profile = self._effective_profile()
        out: list[tuple[int, float]] = []
        head = min(self.reaction_samples, num_samples)
        if head > 0:
            out.append((head, self.initial_bandwidth))
        remaining = num_samples - head
        for length, bw in profile:
            if remaining <= 0:
                break
            take = min(length, remaining)
            out.append((take, bw))
            remaining -= take
        if remaining > 0:
            # Past the end of the observation: keep jamming at the last
            # seen bandwidth (or the initial one if nothing was seen).
            last_bw = profile[-1][1] if profile else self.initial_bandwidth
            out.append((remaining, last_bw))
        return out

    def waveform(self, num_samples: int, rng=None) -> np.ndarray:
        n = self._check_length(num_samples)
        gen = make_rng(rng)
        pieces = [
            bandlimited_noise(length, bw, self.sample_rate, gen)
            for length, bw in self._bandwidth_profile(n)
            if length > 0
        ]
        if not pieces:
            return np.zeros(0, dtype=complex)
        return np.concatenate(pieces)

    def spec(self) -> dict:
        out = {
            "type": "reactive",
            "sample_rate": float(self.sample_rate),
            "reaction_samples": int(self.reaction_samples),
            "initial_bandwidth": float(self.initial_bandwidth),
        }
        if self.reaction_fraction is not None:
            out["reaction_fraction"] = float(self.reaction_fraction)
        return out

    @property
    def description(self) -> str:
        tau_us = self.reaction_samples / self.sample_rate * 1e6
        return f"matched reactive jammer (tau = {tau_us:.3g} us)"
