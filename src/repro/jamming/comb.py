"""Multi-tone (comb) jammer.

An attacker that splits its power budget across several discrete tones —
the classic counter to plain excision filtering, since the excision
filter must notch every tooth.  Against BHSS the comb behaves like a
narrow-band jammer whose occupied bandwidth is the sum of the teeth: the
whitening filter notches all of them at once (its eq.-3 design is built
from the PSD, not from a single-band assumption), which the tests and the
spectral-estimation path verify.
"""

from __future__ import annotations

import numpy as np

from repro.jamming.base import Jammer
from repro.utils.rng import make_rng
from repro.utils.validation import ensure_positive

__all__ = ["CombJammer"]


class CombJammer(Jammer):
    """Equal-power tones at fixed frequency offsets.

    Parameters
    ----------
    frequencies:
        Tone frequencies in Hz (all within the Nyquist band).
    sample_rate:
        Baseband sample rate in Hz.

    The tones get independent random starting phases per instance (seeded
    through ``reset``/construction), and the waveform keeps phase
    continuity across calls.
    """

    def __init__(self, frequencies, sample_rate: float, seed: int | None = None) -> None:
        freqs = np.asarray(frequencies, dtype=float)
        if freqs.ndim != 1 or freqs.size == 0:
            raise ValueError("frequencies must be a non-empty 1-D sequence")
        ensure_positive(sample_rate, "sample_rate")
        if np.any(np.abs(freqs) > sample_rate / 2):
            raise ValueError("all tone frequencies must be within the Nyquist band")
        if len(set(freqs.tolist())) != freqs.size:
            raise ValueError("tone frequencies must be distinct")
        self.frequencies = freqs
        self.sample_rate = float(sample_rate)
        self._seed = seed
        self.reset()

    def reset(self) -> None:
        rng = make_rng(self._seed)
        self._phases = rng.uniform(0.0, 2 * np.pi, size=self.frequencies.size)
        self._position = 0

    def waveform(self, num_samples: int, rng=None) -> np.ndarray:
        n = self._check_length(num_samples)
        k = self._position + np.arange(n)
        steps = 2 * np.pi * self.frequencies / self.sample_rate
        out = np.zeros(n, dtype=complex)
        for phase0, step in zip(self._phases, steps):
            out += np.exp(1j * (phase0 + step * k))
        self._position += n
        # equal power per tone, unit total power
        return out / np.sqrt(self.frequencies.size)

    def spec(self) -> dict:
        out = {
            "type": "comb",
            "frequencies": [float(f) for f in self.frequencies],
            "sample_rate": float(self.sample_rate),
        }
        if self._seed is not None:
            out["seed"] = int(self._seed)
        return out

    @property
    def description(self) -> str:
        teeth = ", ".join(f"{f / 1e6:.3g}" for f in self.frequencies)
        return f"comb jammer ({self.frequencies.size} tones at {teeth} MHz)"
