"""Bandwidth-hopping jammer.

Section 6.4.3's strongest attacker: since a fixed jamming bandwidth can be
countered by an adaptive BHSS transmitter, "the jammer should also hop its
bandwidth randomly".  This jammer draws a bandwidth per dwell from the same
kinds of distributions the transmitter uses (linear / exponential /
parabolic over the bandwidth set) — but from its *own* random stream: the
attacker cannot know the transmitter's seed.
"""

from __future__ import annotations

import numpy as np

from repro.jamming.base import Jammer
from repro.jamming.noise import bandlimited_noise
from repro.utils.rng import make_rng
from repro.utils.validation import ensure_positive, ensure_probability_vector

__all__ = ["HoppingJammer"]


class HoppingJammer(Jammer):
    """Gaussian-noise jammer whose bandwidth hops randomly per dwell.

    Parameters
    ----------
    bandwidths:
        Candidate jamming bandwidths in Hz.
    weights:
        Selection probabilities (normalized internally), a pattern name
        (``"linear"`` / ``"exponential"`` / ``"parabolic"``, resolved over
        ``bandwidths``), or ``None`` = uniform ("linear" pattern).
    sample_rate:
        Baseband sample rate in Hz.
    dwell_samples:
        Samples per hop.  The paper's reactive-jamming bound says a jammer
        needs a few symbols to react; a hopping jammer similarly commits
        to each bandwidth for a dwell.
    seed:
        The jammer's own random seed (independent of the link's seed).
    """

    def __init__(
        self,
        bandwidths,
        sample_rate: float,
        dwell_samples: int,
        weights=None,
        seed: int | None = None,
    ) -> None:
        self.bandwidths = np.asarray(bandwidths, dtype=float)
        if self.bandwidths.ndim != 1 or self.bandwidths.size == 0:
            raise ValueError("bandwidths must be a non-empty 1-D sequence")
        if np.any(self.bandwidths <= 0):
            raise ValueError("bandwidths must be positive")
        self.sample_rate = ensure_positive(sample_rate, "sample_rate")
        if dwell_samples < 1:
            raise ValueError(f"dwell_samples must be >= 1, got {dwell_samples}")
        self.dwell_samples = int(dwell_samples)
        self._weights_name: str | None = None
        if weights is None:
            weights = np.ones(self.bandwidths.size, dtype=float)
        elif isinstance(weights, str):
            from repro.hopping.patterns import pattern_weights

            self._weights_name = weights.lower()
            weights = pattern_weights(weights, self.bandwidths)
        self.weights = ensure_probability_vector(weights, "weights")
        if self.weights.size != self.bandwidths.size:
            raise ValueError("weights and bandwidths must have the same length")
        self.seed = seed
        self._hop_rng = make_rng(seed)
        self._remaining = 0
        self._current_bw = float(self.bandwidths[0])
        self.hop_history: list[float] = []

    def reset(self) -> None:
        self._remaining = 0
        self.hop_history = []

    def _next_bandwidth(self) -> float:
        idx = self._hop_rng.choice(self.bandwidths.size, p=self.weights)
        bw = float(self.bandwidths[idx])
        self.hop_history.append(bw)
        return bw

    def waveform(self, num_samples: int, rng=None) -> np.ndarray:
        n = self._check_length(num_samples)
        gen = make_rng(rng)
        out = np.empty(n, dtype=complex)
        pos = 0
        while pos < n:
            if self._remaining == 0:
                self._current_bw = self._next_bandwidth()
                self._remaining = self.dwell_samples
            take = min(self._remaining, n - pos)
            out[pos : pos + take] = bandlimited_noise(
                take, self._current_bw, self.sample_rate, gen
            )
            self._remaining -= take
            pos += take
        return out

    def spec(self) -> dict:
        out = {
            "type": "hopping",
            "bandwidths": [float(b) for b in self.bandwidths],
            "sample_rate": float(self.sample_rate),
            "dwell_samples": int(self.dwell_samples),
            "weights": self._weights_name or [float(w) for w in self.weights],
        }
        if self.seed is not None:
            out["seed"] = int(self.seed)
        return out

    @property
    def description(self) -> str:
        return (
            f"hopping jammer over {self.bandwidths.size} bandwidths, "
            f"dwell {self.dwell_samples} samples"
        )
