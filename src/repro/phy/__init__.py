"""PHY layer: bit/nibble packing, CRC, QPSK chip modulation, framing."""

from repro.phy.bits import (
    bits_to_bytes,
    bits_to_nibbles,
    bytes_to_bits,
    bytes_to_nibbles,
    hamming_distance_bits,
    nibbles_to_bits,
    nibbles_to_bytes,
)
from repro.phy.crc import (
    append_crc16,
    check_crc16,
    crc16_ccitt,
    crc16_ccitt_bitwise,
    crc32_ieee,
    crc32_ieee_bitwise,
)
from repro.phy.qpsk import ChipModulator, binary_chips_to_complex, complex_chips_to_binary
from repro.phy.frame import DEFAULT_FRAME_FORMAT, FrameFormat, ParsedFrame

__all__ = [
    "bytes_to_bits",
    "bits_to_bytes",
    "bytes_to_nibbles",
    "nibbles_to_bytes",
    "bits_to_nibbles",
    "nibbles_to_bits",
    "hamming_distance_bits",
    "crc16_ccitt",
    "crc16_ccitt_bitwise",
    "crc32_ieee",
    "crc32_ieee_bitwise",
    "append_crc16",
    "check_crc16",
    "ChipModulator",
    "binary_chips_to_complex",
    "complex_chips_to_binary",
    "FrameFormat",
    "ParsedFrame",
    "DEFAULT_FRAME_FORMAT",
]
