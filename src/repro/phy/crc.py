"""CRC-16 and CRC-32 implementations.

The paper's frame carries a CRC used to decide packet success/failure —
the power-advantage metric counts a packet as lost when "the CRC does not
match the content of the packet".  CRC-16/CCITT (the 802.15.4 FCS) is the
default; CRC-32 (IEEE 802.3) is included for the larger test payloads.

Both a bit-by-bit reference and a table-driven fast path are implemented;
the tests verify they agree and match published check values.
"""

from __future__ import annotations

import numpy as np

__all__ = ["crc16_ccitt", "crc16_ccitt_bitwise", "crc32_ieee", "crc32_ieee_bitwise", "append_crc16", "check_crc16"]


def _build_crc16_table(poly: int = 0x1021) -> np.ndarray:
    table = np.zeros(256, dtype=np.uint16)
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ poly) & 0xFFFF if crc & 0x8000 else (crc << 1) & 0xFFFF
        table[byte] = crc
    return table


def _build_crc32_table(poly: int = 0xEDB88320) -> np.ndarray:
    table = np.zeros(256, dtype=np.uint32)
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ poly if crc & 1 else crc >> 1
        table[byte] = crc
    return table


_CRC16_TABLE = _build_crc16_table()
_CRC32_TABLE = _build_crc32_table()


def crc16_ccitt(data: bytes, initial: int = 0x0000) -> int:
    """CRC-16/CCITT (XMODEM variant: poly 0x1021, init 0, no reflection).

    This is the FCS of IEEE 802.15.4 when computed over reflected bits;
    the XMODEM form is used here because the PHY already handles bit order.
    """
    crc = initial & 0xFFFF
    for byte in bytes(data):
        crc = ((crc << 8) & 0xFFFF) ^ int(_CRC16_TABLE[((crc >> 8) ^ byte) & 0xFF])
    return crc


def crc16_ccitt_bitwise(data: bytes, initial: int = 0x0000) -> int:
    """Bit-by-bit reference implementation of :func:`crc16_ccitt`."""
    crc = initial & 0xFFFF
    for byte in bytes(data):
        crc ^= byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ 0x1021) & 0xFFFF if crc & 0x8000 else (crc << 1) & 0xFFFF
    return crc


def crc32_ieee(data: bytes) -> int:
    """CRC-32 (IEEE 802.3: reflected poly 0xEDB88320, init/final 0xFFFFFFFF).

    Matches ``zlib.crc32``.
    """
    crc = 0xFFFFFFFF
    for byte in bytes(data):
        crc = (crc >> 8) ^ int(_CRC32_TABLE[(crc ^ byte) & 0xFF])
    return crc ^ 0xFFFFFFFF


def crc32_ieee_bitwise(data: bytes) -> int:
    """Bit-by-bit reference implementation of :func:`crc32_ieee`."""
    crc = 0xFFFFFFFF
    for byte in bytes(data):
        crc ^= byte
        for _ in range(8):
            crc = (crc >> 1) ^ 0xEDB88320 if crc & 1 else crc >> 1
    return crc ^ 0xFFFFFFFF


def append_crc16(payload: bytes) -> bytes:
    """Return ``payload`` with its big-endian CRC-16 appended."""
    crc = crc16_ccitt(payload)
    return bytes(payload) + bytes([(crc >> 8) & 0xFF, crc & 0xFF])


def check_crc16(frame: bytes) -> bool:
    """Validate a frame produced by :func:`append_crc16`."""
    if len(frame) < 2:
        return False
    payload, tail = frame[:-2], frame[-2:]
    crc = crc16_ccitt(payload)
    return tail == bytes([(crc >> 8) & 0xFF, crc & 0xFF])
