"""Forward error correction and interleaving (extension beyond the paper).

The paper evaluates packet delivery *"in absence of channel coding"*
(Section 5.4) — any bit error kills the CRC, so a packet survives only if
every hop dwell decodes cleanly.  This module adds the natural extension:
block codes plus a frame-spanning block interleaver.  Interleaving
spreads each codeword across hop dwells, so a single jammed dwell turns
into isolated, correctable errors instead of a lost packet — directly
attacking the many-dwells-per-packet weakness quantified by the
``ablation_dwells`` benchmark.

Codecs operate on 0/1 bit arrays of arbitrary length: ``encode`` pads the
input with zeros up to a whole number of data blocks, ``decode`` returns
every decoded bit (the caller trims to the known message length with
``encoded_length``/the original size).
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = [
    "Codec",
    "IdentityCode",
    "RepetitionCode",
    "HammingCode",
    "get_codec",
    "block_interleave",
    "block_deinterleave",
]


def _as_bits(bits) -> np.ndarray:
    arr = np.asarray(bits)
    if arr.ndim != 1:
        raise ValueError(f"bits must be 1-D, got shape {arr.shape}")
    arr = arr.astype(np.uint8)
    if arr.size and arr.max() > 1:
        raise ValueError("bits must be 0/1 valued")
    return arr


class Codec(abc.ABC):
    """A block channel code over GF(2) bits."""

    #: data bits per block
    k: int
    #: coded bits per block
    n: int

    @property
    def rate(self) -> float:
        """Code rate k/n."""
        return self.k / self.n

    @property
    def name(self) -> str:
        """Short identifier, e.g. ``hamming74``."""
        return type(self).__name__

    def encoded_length(self, num_data_bits: int) -> int:
        """Coded bits produced for ``num_data_bits`` input bits."""
        if num_data_bits < 0:
            raise ValueError("num_data_bits must be >= 0")
        blocks = -(-num_data_bits // self.k) if num_data_bits else 0
        return blocks * self.n

    def _pad_to_blocks(self, bits: np.ndarray) -> np.ndarray:
        remainder = bits.size % self.k
        if remainder:
            bits = np.concatenate([bits, np.zeros(self.k - remainder, dtype=np.uint8)])
        return bits

    @abc.abstractmethod
    def encode(self, bits) -> np.ndarray:
        """Encode data bits into coded bits (zero-padded to whole blocks)."""

    @abc.abstractmethod
    def decode(self, coded) -> np.ndarray:
        """Decode coded bits back into data bits (including any pad)."""


class IdentityCode(Codec):
    """Rate-1 pass-through (the paper's uncoded system)."""

    k = 1
    n = 1

    def encode(self, bits) -> np.ndarray:
        return _as_bits(bits).copy()

    def decode(self, coded) -> np.ndarray:
        return _as_bits(coded).copy()


class RepetitionCode(Codec):
    """k=1 repetition code with majority-vote decoding.

    ``repeats`` must be odd so votes never tie.
    """

    k = 1

    def __init__(self, repeats: int = 3) -> None:
        if repeats < 3 or repeats % 2 == 0:
            raise ValueError(f"repeats must be an odd integer >= 3, got {repeats}")
        self.repeats = int(repeats)
        self.n = self.repeats

    @property
    def name(self) -> str:
        return f"rep{self.repeats}"

    def encode(self, bits) -> np.ndarray:
        return np.repeat(_as_bits(bits), self.repeats)

    def decode(self, coded) -> np.ndarray:
        c = _as_bits(coded)
        if c.size % self.repeats:
            raise ValueError(f"coded length {c.size} not a multiple of {self.repeats}")
        votes = c.reshape(-1, self.repeats).sum(axis=1)
        return (votes > self.repeats // 2).astype(np.uint8)


class HammingCode(Codec):
    """Hamming(2^m - 1, 2^m - 1 - m): corrects one bit error per codeword.

    ``m = 3`` gives the classic (7, 4) code, ``m = 4`` the (15, 11).
    Systematic construction: codeword = [data | parity], with the parity
    matrix derived from the binary representations of the column indices.
    """

    def __init__(self, m: int = 3) -> None:
        if not 2 <= m <= 8:
            raise ValueError(f"m must be in 2..8, got {m}")
        self.m = int(m)
        self.n = (1 << m) - 1
        self.k = self.n - m
        # Parity-check columns: all non-zero m-bit vectors.  Put the
        # weight-1 columns (identity) last so H = [A^T | I] and the code
        # is systematic with G = [I | A].
        columns = [
            np.array([(v >> b) & 1 for b in range(m)], dtype=np.uint8)
            for v in range(1, self.n + 1)
        ]
        weight1 = [c for c in columns if c.sum() == 1]
        others = [c for c in columns if c.sum() != 1]
        # order weight-1 columns as the identity matrix
        weight1.sort(key=lambda c: int(np.argmax(c)))
        self._h = np.stack(others + weight1, axis=1)  # shape (m, n)
        self._a = self._h[:, : self.k].T  # shape (k, m): parity generator
        # syndrome -> error position lookup
        self._syndrome_to_pos = {}
        for pos in range(self.n):
            syndrome = tuple(int(x) for x in self._h[:, pos])
            self._syndrome_to_pos[syndrome] = pos

    @property
    def name(self) -> str:
        return f"hamming{self.n}{self.k}"

    def encode(self, bits) -> np.ndarray:
        data = self._pad_to_blocks(_as_bits(bits)).reshape(-1, self.k)
        parity = (data @ self._a) % 2
        return np.concatenate([data, parity.astype(np.uint8)], axis=1).reshape(-1)

    def decode(self, coded) -> np.ndarray:
        c = _as_bits(coded)
        if c.size % self.n:
            raise ValueError(f"coded length {c.size} not a multiple of n={self.n}")
        words = c.reshape(-1, self.n).copy()
        syndromes = (words @ self._h.T) % 2  # shape (blocks, m)
        for i, syn in enumerate(syndromes):
            key = tuple(int(x) for x in syn)
            if any(key):
                pos = self._syndrome_to_pos.get(key)
                if pos is not None:
                    words[i, pos] ^= 1
        return words[:, : self.k].reshape(-1)


_CODECS = {
    "none": lambda: IdentityCode(),
    "identity": lambda: IdentityCode(),
    "rep3": lambda: RepetitionCode(3),
    "rep5": lambda: RepetitionCode(5),
    "hamming74": lambda: HammingCode(3),
    "hamming1511": lambda: HammingCode(4),
}


def get_codec(name) -> Codec:
    """Look up a codec by name; an existing instance passes through."""
    if isinstance(name, Codec):
        return name
    try:
        return _CODECS[str(name).lower()]()
    except KeyError:
        raise ValueError(f"unknown codec {name!r}; choose from {sorted(_CODECS)}") from None


def _interleave_permutation(length: int, depth: int) -> np.ndarray:
    """Read order of a row-major (depth columns) grid read column-major.

    A permutation-based block interleaver: exact for any length, no
    padding needed, and exactly invertible.
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    idx = np.arange(length)
    rows = idx // depth
    cols = idx % depth
    return np.lexsort((rows, cols))


def block_interleave(bits, depth: int) -> np.ndarray:
    """Interleave a bit (or symbol) array with a block depth.

    Consecutive input bits land ``~length/depth`` positions apart, so a
    burst of up to ``length/depth`` corrupted output bits de-interleaves
    into isolated single errors — one per codeword if ``depth`` is at
    least the codeword length.
    """
    arr = np.asarray(bits)
    if arr.ndim != 1:
        raise ValueError("bits must be 1-D")
    return arr[_interleave_permutation(arr.size, depth)]


def block_deinterleave(bits, depth: int) -> np.ndarray:
    """Invert :func:`block_interleave` with the same depth."""
    arr = np.asarray(bits)
    if arr.ndim != 1:
        raise ValueError("bits must be 1-D")
    perm = _interleave_permutation(arr.size, depth)
    out = np.empty_like(arr)
    out[perm] = arr
    return out
