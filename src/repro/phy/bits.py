"""Bit / nibble / byte packing utilities.

The 16-ary PHY works in 4-bit symbols (nibbles), the framing layer in
bytes, and the analysis layer in bits; these converters are the glue.
Bit order is LSB-first within a byte, matching IEEE 802.15.4's over-the-air
convention.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bytes_to_bits",
    "bits_to_bytes",
    "bytes_to_nibbles",
    "nibbles_to_bytes",
    "bits_to_nibbles",
    "nibbles_to_bits",
    "hamming_distance_bits",
]


def bytes_to_bits(data: bytes) -> np.ndarray:
    """Unpack bytes to a 0/1 bit array, LSB of each byte first."""
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    return np.unpackbits(arr, bitorder="little")


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack a 0/1 bit array (LSB-first) back into bytes.

    The bit count must be a multiple of 8.
    """
    b = np.asarray(bits)
    if b.size % 8 != 0:
        raise ValueError(f"bit count {b.size} is not a multiple of 8")
    return np.packbits(b.astype(np.uint8), bitorder="little").tobytes()


def bytes_to_nibbles(data: bytes) -> np.ndarray:
    """Split bytes into 4-bit symbols, low nibble first (802.15.4 order)."""
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    out = np.empty(arr.size * 2, dtype=np.uint8)
    out[0::2] = arr & 0x0F
    out[1::2] = arr >> 4
    return out


def nibbles_to_bytes(nibbles: np.ndarray) -> bytes:
    """Reassemble 4-bit symbols (low nibble first) into bytes."""
    n = np.asarray(nibbles, dtype=np.uint8)
    if n.size % 2 != 0:
        raise ValueError(f"nibble count {n.size} is not even")
    if n.size and n.max() > 0x0F:
        raise ValueError("nibble values must be in 0..15")
    lo = n[0::2]
    hi = n[1::2]
    return ((hi << 4) | lo).astype(np.uint8).tobytes()


def bits_to_nibbles(bits: np.ndarray) -> np.ndarray:
    """Group bits (LSB-first) into 4-bit symbols."""
    b = np.asarray(bits, dtype=np.uint8)
    if b.size % 4 != 0:
        raise ValueError(f"bit count {b.size} is not a multiple of 4")
    groups = b.reshape(-1, 4)
    weights = np.array([1, 2, 4, 8], dtype=np.uint8)
    return (groups * weights).sum(axis=1).astype(np.uint8)


def nibbles_to_bits(nibbles: np.ndarray) -> np.ndarray:
    """Expand 4-bit symbols into bits, LSB first."""
    n = np.asarray(nibbles, dtype=np.uint8)
    out = np.empty(n.size * 4, dtype=np.uint8)
    for k in range(4):
        out[k::4] = (n >> k) & 1
    return out


def hamming_distance_bits(a: bytes, b: bytes) -> int:
    """Number of differing bits between two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    xa = np.frombuffer(bytes(a), dtype=np.uint8)
    xb = np.frombuffer(bytes(b), dtype=np.uint8)
    return int(np.unpackbits(xa ^ xb).sum())
