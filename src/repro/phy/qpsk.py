"""QPSK chip modulation with stretchable pulse shaping.

Binary +-1 chips are mapped pairwise onto the QPSK constellation (even
chip -> I, odd chip -> Q, as in 802.15.4's O-QPSK without the half-chip
offset), pulse-shaped with the currently selected samples-per-chip, and
normalized to **unit average transmit power** regardless of the stretch
factor — the paper's attacker model fixes transmit *power*, so hopping to
a narrower bandwidth concentrates more energy per chip.

The demodulator is the matched filter sampled at chip centres, returning
soft chip values for the despreading correlators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import dispatch
from repro.dsp.fir import convolve_nfft, fft_convolve, fft_convolve_batch
from repro.dsp.pulse import PulseShape, get_pulse
from repro.utils.validation import as_complex_array

__all__ = [
    "ChipModulator",
    "binary_chips_to_complex",
    "binary_chips_to_complex_batch",
    "complex_chips_to_binary",
    "complex_chips_to_binary_batch",
]


def binary_chips_to_complex(chips: np.ndarray) -> np.ndarray:
    """Pair +-1 binary chips into unit-power QPSK complex chips.

    Even-index chips become I, odd-index chips Q; length must be even.
    """
    c = np.asarray(chips, dtype=float)
    if c.ndim != 1 or c.size % 2 != 0:
        raise ValueError(f"chips must be a 1-D even-length array, got shape {c.shape}")
    return (c[0::2] + 1j * c[1::2]) / np.sqrt(2)


def binary_chips_to_complex_batch(chips: np.ndarray) -> np.ndarray:
    """Row-wise :func:`binary_chips_to_complex` on a ``(R, C)`` chip stack."""
    c = np.asarray(chips, dtype=float)
    if c.ndim != 2 or c.shape[1] % 2 != 0:
        raise ValueError(f"chips must be a 2-D even-width array, got shape {c.shape}")
    return (c[:, 0::2] + 1j * c[:, 1::2]) / np.sqrt(2)


def complex_chips_to_binary(symbols: np.ndarray) -> np.ndarray:
    """Interleave complex soft chips back into soft binary chip values."""
    s = as_complex_array(symbols, "symbols")
    out = np.empty(2 * s.size, dtype=float)
    out[0::2] = s.real
    out[1::2] = s.imag
    return out


def complex_chips_to_binary_batch(symbols: np.ndarray) -> np.ndarray:
    """Row-wise :func:`complex_chips_to_binary` on a ``(R, S)`` stack."""
    s = np.asarray(symbols)
    if s.ndim != 2:
        raise ValueError(f"symbols must be 2-D, got shape {s.shape}")
    s = s.astype(np.complex128, copy=False)
    out = np.empty((s.shape[0], 2 * s.shape[1]), dtype=float)
    out[:, 0::2] = s.real
    out[:, 1::2] = s.imag
    return out


@dataclass(frozen=True)
class ChipModulator:
    """Pulse-shaping QPSK chip modulator/demodulator.

    Parameters
    ----------
    pulse:
        A :class:`repro.dsp.pulse.PulseShape` (or its name).  The paper's
        implementation uses the half-sine shape.

    The samples-per-(complex)-chip value ``sps`` is passed per call, not
    fixed at construction: hopping the bandwidth *is* changing ``sps``
    mid-packet, and the BHSS transmitter calls :meth:`modulate` with a
    different ``sps`` for every hop segment.
    """

    pulse: PulseShape

    def __post_init__(self) -> None:
        object.__setattr__(self, "pulse", get_pulse(self.pulse))

    def _pulse_and_trim(self, sps: int) -> tuple[np.ndarray, int]:
        # Cached per-(shape, sps) table: hop stretching revisits the same
        # few sps values constantly (see repro.dsp.pulse._WAVEFORM_TABLE).
        p = self.pulse.waveform_cached(sps)
        trim = (p.size - sps) // 2
        return p, trim

    def modulate(self, chips: np.ndarray, sps: int) -> np.ndarray:
        """Modulate +-1 binary chips at ``sps`` samples per complex chip.

        Returns a complex waveform of ``len(chips)//2 * sps`` samples with
        unit average power.
        """
        if sps < 1:
            raise ValueError(f"sps must be >= 1, got {sps}")
        cplx = binary_chips_to_complex(chips)
        n = cplx.size
        if n == 0:
            return np.zeros(0, dtype=complex)
        p, trim = self._pulse_and_trim(sps)
        if p.size == sps:
            # Time-limited pulse (span 1): chip pulses don't overlap, so
            # the shaping convolution degenerates to one scaled pulse copy
            # per chip — a single product per output sample, no FFT.
            wave = (cplx[:, None] * p).reshape(-1)
        else:
            impulses = np.zeros(n * sps, dtype=complex)
            impulses[::sps] = cplx
            wave = fft_convolve(impulses, p.astype(complex))[trim : trim + n * sps]
        # Unit-energy pulse gives average power 1/sps; rescale to power 1.
        return wave * np.sqrt(sps)

    def modulate_batch(self, chips: np.ndarray, sps: int) -> np.ndarray:
        """Row-wise :meth:`modulate` for a ``(R, C)`` stack of chip frames.

        All rows share one ``sps`` (callers group hop segments by stretch
        factor).  Row ``i`` of the output is bit-identical to
        ``modulate(chips[i], sps)``: the impulse-train construction is
        positional, and the shared-pulse convolution goes through
        :func:`repro.dsp.fir.fft_convolve_batch`, whose per-row FFTs match
        the serial ones bit for bit.
        """
        if sps < 1:
            raise ValueError(f"sps must be >= 1, got {sps}")
        cplx = binary_chips_to_complex_batch(chips)
        rows, n = cplx.shape
        if rows == 0 or n == 0:
            return np.zeros((rows, n * sps), dtype=complex)
        wave: np.ndarray = dispatch("modulate", "modulate_batch", self, cplx, sps)
        return wave

    def _shape_chips_batch(self, cplx: np.ndarray, sps: int) -> np.ndarray:
        """Reference pulse-shaping core of :meth:`modulate_batch`.

        ``cplx`` is the validated, non-empty ``(R, n)`` complex-chip stack;
        this body is the NumPy oracle the backend layer dispatches to.
        """
        rows, n = cplx.shape
        p, trim = self._pulse_and_trim(sps)
        if p.size == sps:
            # Same non-overlapping fast path as the serial :meth:`modulate`
            # — each output sample is the identical single product.
            wave = (cplx[:, :, None] * p).reshape(rows, -1)
        else:
            impulses = np.zeros((rows, n * sps), dtype=complex)
            impulses[:, ::sps] = cplx
            pf = self.pulse.spectrum_cached(sps, convolve_nfft(n * sps, p.size))
            wave = fft_convolve_batch(impulses, p.astype(complex), taps_fft=pf)
            wave = wave[:, trim : trim + n * sps]
        return wave * np.sqrt(sps)

    def demodulate_batch(
        self,
        waveform: np.ndarray,
        sps: int,
        num_chips: int | None = None,
        matched: bool = True,
    ) -> np.ndarray:
        """Row-wise :meth:`demodulate` for a ``(R, N)`` waveform stack.

        Same per-row bit-identity contract as :meth:`modulate_batch`; all
        rows share ``sps`` and ``num_chips``.
        """
        if sps < 1:
            raise ValueError(f"sps must be >= 1, got {sps}")
        x = np.asarray(waveform)
        if x.ndim != 2:
            raise ValueError(f"waveform must be 2-D, got shape {x.shape}")
        x = x.astype(np.complex128, copy=False)
        n_cc_avail = x.shape[1] // sps
        if num_chips is not None:
            if num_chips % 2 != 0:
                raise ValueError("num_chips must be even (I/Q pairs)")
            n_cc = num_chips // 2
            if n_cc > n_cc_avail:
                raise ValueError(f"waveform holds {n_cc_avail} complex chips, need {n_cc}")
        else:
            n_cc = n_cc_avail
        if n_cc == 0:
            return np.zeros((x.shape[0], 0), dtype=float)
        p, trim = self._pulse_and_trim(sps)
        if matched:
            pf = self.pulse.spectrum_cached(sps, convolve_nfft(x.shape[1], p.size))
            mf = fft_convolve_batch(x, p.astype(complex), taps_fft=pf)
            idx = np.arange(n_cc) * sps + (p.size - 1) - trim
            soft_cplx = mf[:, idx]
            soft_cplx = soft_cplx / np.sqrt(sps) * np.sqrt(2)
        else:
            centre = sps // 2
            idx = np.arange(n_cc) * sps + centre
            idx = np.minimum(idx, x.shape[1] - 1)
            centre_gain = p[trim + centre] if trim + centre < p.size else p[p.size // 2]
            if centre_gain <= 0:
                raise ValueError("pulse centre amplitude is non-positive")
            soft_cplx = x[:, idx] / (np.sqrt(sps) * centre_gain) * np.sqrt(2)
        return complex_chips_to_binary_batch(soft_cplx)

    def demodulate(
        self,
        waveform: np.ndarray,
        sps: int,
        num_chips: int | None = None,
        matched: bool = True,
    ) -> np.ndarray:
        """Recover soft binary chips from a waveform.

        With ``matched=True`` (default) the waveform goes through the
        pulse matched filter and is sampled at the correlation peaks —
        the proper receiver.  With ``matched=False`` the chips are read
        by *direct sampling at the chip centres* with no band-limiting at
        all: this is eq. (5)'s "received baseband signal, sampled at the
        chip rate", the theory model's unfiltered receiver, in which
        out-of-band interference aliases straight into the decision
        variable.  It is the baseline the paper's Section-6.3 power
        advantage is measured against.

        ``num_chips`` (binary chips, even) limits the output; by default
        every full complex chip contained in the waveform is returned.
        The soft values are scaled so that a cleanly received +-1 chip
        yields approximately +-1.
        """
        if sps < 1:
            raise ValueError(f"sps must be >= 1, got {sps}")
        x = as_complex_array(waveform, "waveform")
        n_cc_avail = x.size // sps
        if num_chips is not None:
            if num_chips % 2 != 0:
                raise ValueError("num_chips must be even (I/Q pairs)")
            n_cc = num_chips // 2
            if n_cc > n_cc_avail:
                raise ValueError(
                    f"waveform holds {n_cc_avail} complex chips, need {n_cc}"
                )
        else:
            n_cc = n_cc_avail
        if n_cc == 0:
            return np.zeros(0, dtype=float)
        p, trim = self._pulse_and_trim(sps)
        if matched:
            mf = fft_convolve(x, p.astype(complex))
            idx = np.arange(n_cc) * sps + (p.size - 1) - trim
            soft_cplx = mf[idx]
            # Undo the transmit power scaling and the matched-filter gain
            # (pulse has unit energy, so MF gain on the aligned chip is 1).
            soft_cplx = soft_cplx / np.sqrt(sps) * np.sqrt(2)
        else:
            # Raw chip-rate sampling: one sample at each chip centre,
            # rescaled by the pulse's centre amplitude and the transmit
            # power normalization so clean chips still read +-1.
            centre = sps // 2
            idx = np.arange(n_cc) * sps + centre
            idx = np.minimum(idx, x.size - 1)
            centre_gain = p[trim + centre] if trim + centre < p.size else p[p.size // 2]
            if centre_gain <= 0:
                raise ValueError("pulse centre amplitude is non-positive")
            soft_cplx = x[idx] / (np.sqrt(sps) * centre_gain) * np.sqrt(2)
        return complex_chips_to_binary(soft_cplx)

    def samples_for_chips(self, num_chips: int, sps: int) -> int:
        """Waveform length produced by ``num_chips`` binary chips at ``sps``."""
        if num_chips % 2 != 0:
            raise ValueError("num_chips must be even")
        return (num_chips // 2) * sps
