"""Frame construction and parsing.

The frame mirrors the paper's 802.15.4-like structure (Section 6.1):
preamble, start-of-frame delimiter (SFD), a length field, payload, and a
CRC-16 "used to check whether frames are correctly received".  Everything
is expressed in 4-bit symbols (nibbles), the unit the 16-ary DSSS modem
spreads.

Layout (in symbols)::

    [ preamble: 8 x 0x0 ][ SFD: 0xA7 ][ length: 1 byte ][ payload ][ CRC-16 ]
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.bits import bytes_to_nibbles, nibbles_to_bytes
from repro.phy.crc import append_crc16, check_crc16

__all__ = ["FrameFormat", "ParsedFrame", "DEFAULT_FRAME_FORMAT"]


@dataclass(frozen=True)
class FrameFormat:
    """Frame layout parameters.

    Attributes
    ----------
    preamble_symbols:
        Number of zero symbols in the preamble (default 8, i.e. 4 bytes).
    sfd:
        Start-of-frame delimiter byte (default 0xA7, the 802.15.4 value).
    max_payload:
        Maximum payload length in bytes representable by the length field.
    """

    preamble_symbols: int = 8
    sfd: int = 0xA7
    max_payload: int = 255

    def __post_init__(self) -> None:
        if self.preamble_symbols < 0:
            raise ValueError("preamble_symbols must be >= 0")
        if not 0 <= self.sfd <= 0xFF:
            raise ValueError("sfd must be one byte")
        if not 1 <= self.max_payload <= 255:
            raise ValueError("max_payload must be in 1..255")

    def to_dict(self) -> dict:
        """JSON-able spec; :meth:`from_dict` inverts it losslessly."""
        return {
            "preamble_symbols": int(self.preamble_symbols),
            "sfd": int(self.sfd),
            "max_payload": int(self.max_payload),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FrameFormat":
        """Rebuild a frame format from :meth:`to_dict` output.

        Unknown fields are rejected by name so spec typos surface early.
        """
        if not isinstance(data, dict):
            raise ValueError(f"frame format spec must be a mapping, got {type(data).__name__}")
        known = {"preamble_symbols", "sfd", "max_payload"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown frame format field(s): {sorted(unknown)}")
        kwargs = {}
        for name in known & set(data):
            value = data[name]
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(f"frame format field {name!r} must be an integer")
            kwargs[name] = value
        return cls(**kwargs)

    @property
    def header_symbols(self) -> int:
        """Symbols before the payload: preamble + SFD (2) + length (2)."""
        return self.preamble_symbols + 2 + 2

    def frame_symbols(self, payload_len: int) -> int:
        """Total symbols in a frame with ``payload_len`` payload bytes."""
        if not 0 <= payload_len <= self.max_payload:
            raise ValueError(f"payload_len must be in 0..{self.max_payload}")
        return self.header_symbols + 2 * payload_len + 4  # + CRC-16

    def payload_bits(self, payload_len: int) -> int:
        """Information bits carried by the payload."""
        return 8 * payload_len

    def build(self, payload: bytes) -> np.ndarray:
        """Serialize a payload into the frame symbol sequence."""
        payload = bytes(payload)
        if len(payload) > self.max_payload:
            raise ValueError(f"payload of {len(payload)} bytes exceeds max {self.max_payload}")
        body = bytes([len(payload)]) + payload
        body = append_crc16(body[1:])  # CRC over the payload alone
        frame_bytes = bytes([self.sfd, len(payload)]) + body
        symbols = np.concatenate(
            [
                np.zeros(self.preamble_symbols, dtype=np.uint8),
                bytes_to_nibbles(frame_bytes),
            ]
        )
        assert symbols.size == self.frame_symbols(len(payload))
        return symbols

    def parse(self, symbols: np.ndarray) -> "ParsedFrame":
        """Parse received frame symbols back into a payload.

        ``symbols`` must start at the frame boundary (the BHSS receiver
        knows the boundary from its synchronized schedule; an acquiring
        receiver finds it with preamble detection first).  Parsing is
        forgiving: any structural mismatch (bad SFD, inconsistent length)
        is reported via flags rather than exceptions, because under
        jamming corrupted headers are the *expected* case.
        """
        syms = np.asarray(symbols, dtype=np.uint8) & 0x0F
        pre = self.preamble_symbols
        if syms.size < self.header_symbols + 4:
            return ParsedFrame(payload=b"", crc_ok=False, sfd_ok=False, length_ok=False, length=0)
        header = nibbles_to_bytes(syms[pre : pre + 4])
        sfd_ok = header[0] == self.sfd
        length = header[1]
        length_ok = length <= self.max_payload and syms.size >= self.frame_symbols(length)
        if not length_ok:
            return ParsedFrame(payload=b"", crc_ok=False, sfd_ok=sfd_ok, length_ok=False, length=length)
        start = pre + 4
        body = nibbles_to_bytes(syms[start : start + 2 * length + 4])
        crc_ok = check_crc16(body)
        return ParsedFrame(
            payload=body[:-2],
            crc_ok=crc_ok,
            sfd_ok=sfd_ok,
            length_ok=True,
            length=length,
        )


@dataclass(frozen=True)
class ParsedFrame:
    """Result of :meth:`FrameFormat.parse`.

    ``accepted`` is the packet-success criterion of the paper's
    experiments: structure intact *and* CRC matching.
    """

    payload: bytes
    crc_ok: bool
    sfd_ok: bool
    length_ok: bool
    length: int

    @property
    def accepted(self) -> bool:
        """Whether the frame would be delivered (SFD, length and CRC good)."""
        return self.sfd_ok and self.length_ok and self.crc_ok


DEFAULT_FRAME_FORMAT = FrameFormat()
