"""Monte-Carlo maximin optimization of hop weights (the parabolic pattern).

The paper (Section 6.4.1): "Using Monte Carlo simulations, we compute a
parabolic distribution that provides the maximum minimal power advantage
for all possible jammer bandwidths.  Maximizing the minimum power
advantage ... is the best option against an attacker which matches its
bandwidth to the one with lowest power advantage."

The optimizer evaluates a candidate weight vector ``w`` by the theoretical
expected improvement (in dB) against every candidate jammer bandwidth and
maximizes the worst case:

    score(w) = min_over_Bj  sum_i  w_i * gamma_dB(B_i, Bj)

Two search modes are provided: a constrained search over the 3-parameter
parabolic family (matching the paper's shape prior) and an unconstrained
Dirichlet random search with local refinement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hopping.patterns import parabolic_weights
from repro.utils.rng import make_rng
from repro.utils.validation import ensure_probability_vector

__all__ = ["maximin_score_db", "optimize_parabolic_weights", "optimize_weights", "OptimizedPattern"]


def _gamma_matrix_db(bandwidths, jammer_bandwidths, jammer_power_db, noise_power):
    # imported lazily: repro.core imports repro.hopping at package load
    from repro.core.theory import improvement_factor_db

    bw = np.asarray(bandwidths, dtype=float)
    jbw = np.asarray(jammer_bandwidths, dtype=float)
    return improvement_factor_db(bw[:, None], jbw[None, :], jammer_power_db, noise_power)


def maximin_score_db(
    weights,
    bandwidths,
    jammer_bandwidths=None,
    jammer_power_db: float = 20.0,
    noise_power: float = 0.01,
) -> float:
    """Worst-case expected SNR improvement (dB) of a hop distribution.

    For every candidate jammer bandwidth the expected improvement is the
    hop-weighted mean of γ_dB(B_i, B_j); the score is the minimum over
    jammer bandwidths.  By default the jammer chooses from the same
    bandwidth set as the transmitter (the paper's strongest fixed-band
    attacker).
    """
    w = ensure_probability_vector(weights, "weights")
    bw = np.asarray(bandwidths, dtype=float)
    if w.size != bw.size:
        raise ValueError("weights and bandwidths must have the same length")
    if jammer_bandwidths is None:
        jammer_bandwidths = bw
    g = _gamma_matrix_db(bw, jammer_bandwidths, jammer_power_db, noise_power)
    per_jammer = w @ g
    return float(per_jammer.min())


@dataclass(frozen=True)
class OptimizedPattern:
    """Result of a hop-weight optimization."""

    weights: np.ndarray
    score_db: float
    #: worst-case jammer bandwidth at the optimum
    worst_jammer_bandwidth: float


def _score_and_worst(weights, bw, jbw, jammer_power_db, noise_power):
    g = _gamma_matrix_db(bw, jbw, jammer_power_db, noise_power)
    per_jammer = weights @ g
    k = int(np.argmin(per_jammer))
    return float(per_jammer[k]), float(jbw[k])


def optimize_parabolic_weights(
    bandwidths,
    jammer_power_db: float = 20.0,
    noise_power: float = 0.01,
    num_trials: int = 2000,
    seed: int = 0,
) -> OptimizedPattern:
    """Monte-Carlo search over the parabolic family (paper's method).

    Samples (vertex, floor, steepness) triples and keeps the maximin-best
    member.  The family is the bathtub ``w_i ∝ floor + (i - vertex)^2``.
    """
    bw = np.asarray(bandwidths, dtype=float)
    if num_trials < 1:
        raise ValueError("num_trials must be >= 1")
    rng = make_rng(seed)
    n = bw.size
    best: OptimizedPattern | None = None
    for _ in range(num_trials):
        vertex = rng.uniform(-1.0, n)
        floor = rng.uniform(0.0, 2.0)
        steepness = rng.uniform(0.05, 3.0)
        w = parabolic_weights(n, vertex=vertex, floor=floor, steepness=steepness)
        score, worst = _score_and_worst(w, bw, bw, jammer_power_db, noise_power)
        if best is None or score > best.score_db:
            best = OptimizedPattern(weights=w, score_db=score, worst_jammer_bandwidth=worst)
    assert best is not None
    return best


def optimize_weights(
    bandwidths,
    jammer_power_db: float = 20.0,
    noise_power: float = 0.01,
    num_trials: int = 4000,
    refine_steps: int = 300,
    seed: int = 0,
    min_throughput: float | None = None,
) -> OptimizedPattern:
    """Unconstrained (or throughput-constrained) maximin hop-weight search.

    Dirichlet random sampling followed by coordinate-wise local
    refinement.  Typically beats the parabolic family slightly; used by
    the ablation benchmark to quantify how close the paper's parabolic
    prior is to the unconstrained optimum.

    ``min_throughput`` (bit/s) adds the rate/robustness trade the paper's
    Section 6.4.1 alludes to: candidate weight vectors whose expected
    throughput (bandwidth-weighted mean / 8) falls below the floor are
    rejected, so the search answers "what is the most jamming-robust
    pattern that still delivers at least T bit/s?".
    """
    from repro.hopping.patterns import expected_throughput

    bw = np.asarray(bandwidths, dtype=float)
    n = bw.size
    rng = make_rng(seed)
    g = _gamma_matrix_db(bw, bw, jammer_power_db, noise_power)
    if min_throughput is not None:
        max_tp = expected_throughput(bw, np.eye(n)[int(np.argmax(bw))])
        if min_throughput > max_tp:
            raise ValueError(
                f"min_throughput {min_throughput:g} exceeds the set's maximum "
                f"achievable throughput {max_tp:g}"
            )

    def feasible(w):
        return min_throughput is None or expected_throughput(bw, w) >= min_throughput

    def score(w):
        if not feasible(w):
            return -np.inf
        return float((w @ g).min())

    # Start from the uniform pattern, or — if the throughput floor rules
    # it out — from all mass on the widest bandwidth (always feasible).
    best_w = np.full(n, 1.0 / n)
    if not feasible(best_w):
        best_w = np.eye(n)[int(np.argmax(bw))]
    best_s = score(best_w)
    for _ in range(num_trials):
        w = rng.dirichlet(np.full(n, 0.5))
        s = score(w)
        if s > best_s:
            best_s, best_w = s, w

    # local refinement: move probability mass pairwise
    step = 0.05
    for _ in range(refine_steps):
        improved = False
        for i in range(n):
            for j in range(n):
                if i == j or best_w[j] < step:
                    continue
                w = best_w.copy()
                w[j] -= step
                w[i] += step
                s = score(w)
                if s > best_s:
                    best_s, best_w, improved = s, w, True
        if not improved:
            step /= 2.0
            if step < 1e-4:
                break

    per_jammer = best_w @ g
    worst = float(bw[int(np.argmin(per_jammer))])
    return OptimizedPattern(weights=best_w, score_db=best_s, worst_jammer_bandwidth=worst)
