"""Seeded hop schedules shared by transmitter and receiver.

The schedule answers one question for both ends of the link: *which
bandwidth is symbol k transmitted at?*  It is derived deterministically
from the pre-shared seed (Section 4.1: the receiver derives "the
instantaneous bandwidth at the receiver from the synchronized random
source"), so the receiver never needs to estimate the bandwidth over the
air — which would be jammable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hopping.bands import BandwidthSet
from repro.hopping.patterns import pattern_weights
from repro.utils.rng import child_rng
from repro.utils.validation import ensure_probability_vector

__all__ = ["HopSchedule", "HopSegment"]


@dataclass(frozen=True)
class HopSegment:
    """One hop's worth of symbols at one bandwidth."""

    #: index of the first symbol of this hop within the frame
    start_symbol: int
    #: number of symbols in this hop
    num_symbols: int
    #: hop bandwidth in Hz
    bandwidth: float
    #: samples per complex chip at this bandwidth
    sps: int


@dataclass(frozen=True)
class HopSchedule:
    """Deterministic per-packet bandwidth schedule.

    Parameters
    ----------
    bandwidth_set:
        The hop bandwidth alphabet (with its sample rate).
    weights:
        Hop-selection probabilities over the set, or a pattern name
        ("linear" / "exponential" / "parabolic").
    symbols_per_hop:
        How many symbols are sent before re-drawing the bandwidth.  The
        paper changes the pulse duration "after a configurable number of
        symbols" — more than one (sub-symbol hopping is unnecessary since
        the jammer needs a couple of symbols to react), but far fewer than
        a packet (to out-pace reactive jammers).
    seed:
        The pre-shared random seed.  Packets are numbered; packet ``k``'s
        schedule comes from an independent substream so schedules never
        repeat across packets.

    A ``fixed_bandwidth`` schedule (for the DSSS/FHSS baselines and for
    the adaptive stop-hopping mode) is produced by
    :meth:`HopSchedule.fixed`.
    """

    bandwidth_set: BandwidthSet
    weights: np.ndarray | str = "linear"
    symbols_per_hop: int = 4
    seed: int = 0
    _fixed_bandwidth: float | None = field(default=None)

    def __post_init__(self) -> None:
        if self.symbols_per_hop < 1:
            raise ValueError(f"symbols_per_hop must be >= 1, got {self.symbols_per_hop}")
        if isinstance(self.weights, str):
            w = pattern_weights(self.weights, self.bandwidth_set.as_array())
        else:
            w = ensure_probability_vector(self.weights, "weights")
            if w.size != len(self.bandwidth_set):
                raise ValueError(
                    f"weights length {w.size} != bandwidth set size {len(self.bandwidth_set)}"
                )
        object.__setattr__(self, "_weights", w)

    @classmethod
    def fixed(cls, bandwidth_set: BandwidthSet, bandwidth: float, seed: int = 0) -> "HopSchedule":
        """A degenerate schedule pinned to one bandwidth (DSSS baseline)."""
        idx = bandwidth_set.index_of(bandwidth)
        w = np.zeros(len(bandwidth_set))
        w[idx] = 1.0
        return cls(
            bandwidth_set=bandwidth_set,
            weights=w,
            symbols_per_hop=1_000_000,  # effectively never hops within a packet
            seed=seed,
            _fixed_bandwidth=float(bandwidth),
        )

    @property
    def is_fixed(self) -> bool:
        """Whether this schedule never changes bandwidth."""
        return self._fixed_bandwidth is not None

    @property
    def hop_weights(self) -> np.ndarray:
        """The normalized hop-selection probabilities."""
        return self._weights.copy()

    def bandwidth_sequence(self, num_hops: int, packet_index: int = 0) -> np.ndarray:
        """The first ``num_hops`` hop bandwidths of packet ``packet_index``."""
        if num_hops < 0:
            raise ValueError(f"num_hops must be >= 0, got {num_hops}")
        if self._fixed_bandwidth is not None:
            return np.full(num_hops, self._fixed_bandwidth)
        rng = child_rng(self.seed, "hop-schedule", str(packet_index))
        bands = self.bandwidth_set.as_array()
        idx = rng.choice(bands.size, size=num_hops, p=self._weights)
        return bands[idx]

    def segments(self, num_symbols: int, packet_index: int = 0) -> list[HopSegment]:
        """Split a frame of ``num_symbols`` symbols into hop segments."""
        if num_symbols < 0:
            raise ValueError(f"num_symbols must be >= 0, got {num_symbols}")
        num_hops = -(-num_symbols // self.symbols_per_hop) if num_symbols else 0
        bandwidths = self.bandwidth_sequence(num_hops, packet_index)
        segments = []
        pos = 0
        for bw in bandwidths:
            take = min(self.symbols_per_hop, num_symbols - pos)
            segments.append(
                HopSegment(
                    start_symbol=pos,
                    num_symbols=take,
                    bandwidth=float(bw),
                    sps=self.bandwidth_set.sps(float(bw)),
                )
            )
            pos += take
        return segments

    def sample_counts(self, num_symbols: int, chips_per_symbol: int, packet_index: int = 0) -> list[int]:
        """Per-hop waveform sample counts for a frame.

        ``chips_per_symbol`` is in *binary* chips (32 for the 16-ary PHY);
        each hop's sample count is ``symbols * chips/2 * sps``.
        """
        if chips_per_symbol % 2 != 0:
            raise ValueError("chips_per_symbol must be even")
        return [
            seg.num_symbols * (chips_per_symbol // 2) * seg.sps
            for seg in self.segments(num_symbols, packet_index)
        ]
