"""Bandwidth sets for hopping.

The paper's experiments hop among seven pre-defined bandwidths — 10, 5,
2.5, 1.25, 0.625, 0.3125 and 0.15625 MHz — an octave-spaced set with hop
range 64 (Section 6.2).  A :class:`BandwidthSet` owns such a set together
with the sample rate, and converts bandwidths to the integer stretch
factors (samples per complex chip) the modulator needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import ensure_positive

__all__ = ["BandwidthSet", "paper_bandwidths", "PAPER_SAMPLE_RATE"]

#: The paper's receiver processing rate: 20 MS/s on the USRP N210.
PAPER_SAMPLE_RATE = 20e6


def paper_bandwidths(max_bandwidth: float = 10e6, count: int = 7) -> np.ndarray:
    """The paper's octave-spaced bandwidth set, widest first.

    ``paper_bandwidths()`` returns [10, 5, 2.5, 1.25, 0.625, 0.3125,
    0.15625] MHz; other maxima/counts scale the same geometric pattern.
    """
    ensure_positive(max_bandwidth, "max_bandwidth")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return max_bandwidth / (2.0 ** np.arange(count))


@dataclass(frozen=True)
class BandwidthSet:
    """An ordered set of hop bandwidths tied to a sample rate.

    Parameters
    ----------
    bandwidths:
        Hop bandwidths in Hz, conventionally widest first.  Each bandwidth
        B maps to ``sps = round(2 * sample_rate / B)`` samples per complex
        chip (two binary chips per complex chip — the paper's convention
        that a 10 MHz signal carries a 10 Mchip/s binary chip stream).
    sample_rate:
        Fixed processing sample rate; the paper deliberately keeps it
        constant across hops "to avoid processing delays when the sampling
        rate would be switched while hopping".
    """

    bandwidths: tuple[float, ...]
    sample_rate: float = PAPER_SAMPLE_RATE

    def __post_init__(self) -> None:
        bws = tuple(float(b) for b in self.bandwidths)
        if len(bws) == 0:
            raise ValueError("bandwidths must be non-empty")
        if any(b <= 0 for b in bws):
            raise ValueError("bandwidths must be positive")
        if len(set(bws)) != len(bws):
            raise ValueError("bandwidths must be distinct")
        ensure_positive(self.sample_rate, "sample_rate")
        object.__setattr__(self, "bandwidths", bws)
        for b in bws:
            sps = 2.0 * self.sample_rate / b
            if abs(sps - round(sps)) > 1e-9 or round(sps) < 1:
                raise ValueError(
                    f"bandwidth {b} does not divide into an integer "
                    f"samples-per-chip at sample rate {self.sample_rate}"
                )

    @classmethod
    def paper_default(cls, sample_rate: float = PAPER_SAMPLE_RATE, count: int = 7) -> "BandwidthSet":
        """The paper's seven-bandwidth set at 20 MS/s."""
        return cls(tuple(paper_bandwidths(sample_rate / 2.0, count)), sample_rate)

    def to_dict(self) -> dict:
        """JSON-able spec; :meth:`from_dict` inverts it losslessly."""
        return {
            "bandwidths": [float(b) for b in self.bandwidths],
            "sample_rate": float(self.sample_rate),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BandwidthSet":
        """Rebuild a bandwidth set from :meth:`to_dict` output."""
        if not isinstance(data, dict):
            raise ValueError(f"bandwidth set spec must be a mapping, got {type(data).__name__}")
        unknown = set(data) - {"bandwidths", "sample_rate"}
        if unknown:
            raise ValueError(f"unknown bandwidth set field(s): {sorted(unknown)}")
        bandwidths = data.get("bandwidths")
        if not isinstance(bandwidths, (list, tuple)) or not bandwidths:
            raise ValueError("bandwidth set field 'bandwidths' must be a non-empty list")
        if not all(isinstance(b, (int, float)) and not isinstance(b, bool) for b in bandwidths):
            raise ValueError("bandwidth set field 'bandwidths' must contain numbers")
        kwargs = {}
        if "sample_rate" in data:
            sample_rate = data["sample_rate"]
            if isinstance(sample_rate, bool) or not isinstance(sample_rate, (int, float)):
                raise ValueError("bandwidth set field 'sample_rate' must be a number")
            kwargs["sample_rate"] = float(sample_rate)
        return cls(tuple(float(b) for b in bandwidths), **kwargs)

    def __len__(self) -> int:
        return len(self.bandwidths)

    def __getitem__(self, index: int) -> float:
        return self.bandwidths[index]

    @property
    def max_bandwidth(self) -> float:
        """Widest hop bandwidth in the set."""
        return max(self.bandwidths)

    @property
    def min_bandwidth(self) -> float:
        """Narrowest hop bandwidth in the set."""
        return min(self.bandwidths)

    @property
    def hop_range(self) -> float:
        """max(Bp)/min(Bp) — 64 for the paper's set."""
        return self.max_bandwidth / self.min_bandwidth

    def sps(self, bandwidth: float) -> int:
        """Samples per complex chip for a bandwidth in the set."""
        if bandwidth not in self.bandwidths:
            raise ValueError(f"bandwidth {bandwidth} not in the set")
        return int(round(2.0 * self.sample_rate / bandwidth))

    def sps_values(self) -> np.ndarray:
        """Samples-per-chip for every bandwidth, in set order."""
        return np.array([self.sps(b) for b in self.bandwidths], dtype=int)

    def index_of(self, bandwidth: float) -> int:
        """Position of a bandwidth within the set."""
        try:
            return self.bandwidths.index(float(bandwidth))
        except ValueError:
            raise ValueError(f"bandwidth {bandwidth} not in the set") from None

    def as_array(self) -> np.ndarray:
        """Bandwidths as a float array (set order)."""
        return np.array(self.bandwidths)
