"""Bandwidth hopping: bandwidth sets, hop-weight patterns, the maximin
optimizer, and seeded hop schedules."""

from repro.hopping.bands import PAPER_SAMPLE_RATE, BandwidthSet, paper_bandwidths
from repro.hopping.patterns import (
    PAPER_PARABOLIC_WEIGHTS,
    exponential_weights,
    expected_bandwidth,
    expected_throughput,
    linear_weights,
    parabolic_weights,
    pattern_weights,
    PATTERN_NAMES,
    pattern_spec,
    pattern_from_spec,
)
from repro.hopping.optimizer import (
    OptimizedPattern,
    maximin_score_db,
    optimize_parabolic_weights,
    optimize_weights,
)
from repro.hopping.schedule import HopSchedule, HopSegment

__all__ = [
    "BandwidthSet",
    "paper_bandwidths",
    "PAPER_SAMPLE_RATE",
    "linear_weights",
    "exponential_weights",
    "parabolic_weights",
    "PAPER_PARABOLIC_WEIGHTS",
    "pattern_weights",
    "PATTERN_NAMES",
    "pattern_spec",
    "pattern_from_spec",
    "expected_bandwidth",
    "expected_throughput",
    "maximin_score_db",
    "optimize_parabolic_weights",
    "optimize_weights",
    "OptimizedPattern",
    "HopSchedule",
    "HopSegment",
]
