"""Hop-weight distributions: linear, exponential, parabolic (Table 1).

The transmitter draws each hop's bandwidth i.i.d. from a distribution over
the bandwidth set.  The paper evaluates three (Section 6.4.1):

* **linear** — uniform over the set;
* **exponential** — probability proportional to bandwidth, which equalizes
  *air time* per bandwidth (a narrow hop takes proportionally longer to
  carry the same number of symbols);
* **parabolic** — a bathtub-shaped distribution favouring the extreme
  bandwidths, tuned by Monte-Carlo search to maximize the minimum power
  advantage over all jammer bandwidths (see
  :mod:`repro.hopping.optimizer`).

Utility metrics (expected bandwidth and throughput) reproduce the numbers
quoted in Section 6.4.1: linear → 2.83 MHz / 354 kb/s, exponential →
6.72 MHz / 840 kb/s on the 7-bandwidth set.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ensure_probability_vector

__all__ = [
    "linear_weights",
    "exponential_weights",
    "parabolic_weights",
    "PAPER_PARABOLIC_WEIGHTS",
    "expected_bandwidth",
    "expected_throughput",
    "pattern_weights",
    "PATTERN_NAMES",
    "pattern_spec",
    "pattern_from_spec",
]

#: The registry of named hop distributions (Table 1's three patterns).
PATTERN_NAMES = ("linear", "exponential", "parabolic")

#: Table 1's parabolic distribution for the 7-bandwidth set (percent
#: values 27.1, 15.8, 6.3, 0.1, 1.3, 22.0, 27.4, normalized).
PAPER_PARABOLIC_WEIGHTS = np.array([27.1, 15.8, 6.3, 0.1, 1.3, 22.0, 27.4]) / 100.0

#: Bits per second carried per hertz of hop bandwidth in the paper's PHY:
#: binary chip rate = bandwidth, 32 chips per 4-bit symbol -> B/8 bit/s.
BITS_PER_HZ = 1.0 / 8.0


def linear_weights(num_bandwidths: int) -> np.ndarray:
    """Uniform hop distribution (the paper's "linear" pattern)."""
    if num_bandwidths < 1:
        raise ValueError(f"num_bandwidths must be >= 1, got {num_bandwidths}")
    return np.full(num_bandwidths, 1.0 / num_bandwidths)


def exponential_weights(bandwidths) -> np.ndarray:
    """Probability proportional to bandwidth → equal air time per bandwidth.

    Expected dwell time at bandwidth B for a fixed symbols-per-hop is
    proportional to 1/B, so drawing B with probability ∝ B makes every
    bandwidth occupy the same fraction of transmission time — the paper's
    "exponential" pattern (50.4 %, 25.2 %, ... on the octave set).
    """
    b = np.asarray(bandwidths, dtype=float)
    if b.ndim != 1 or b.size == 0:
        raise ValueError("bandwidths must be a non-empty 1-D sequence")
    if np.any(b <= 0):
        raise ValueError("bandwidths must be positive")
    return b / b.sum()


def parabolic_weights(
    num_bandwidths: int,
    vertex: float | None = None,
    floor: float = 0.001,
    steepness: float = 1.0,
) -> np.ndarray:
    """A parabola-over-index distribution favouring the extreme bandwidths.

    ``w_i ∝ floor + steepness * (i - vertex)^2`` over band indices
    ``i = 0..n-1``; the default vertex is the middle of the set, which
    yields the bathtub shape of the paper's optimized pattern (most mass
    on the widest and narrowest bandwidths, a dip in the middle).

    For the tuned weights that reproduce Table 1, use
    :data:`PAPER_PARABOLIC_WEIGHTS` or run
    :func:`repro.hopping.optimizer.optimize_parabolic_weights`.
    """
    if num_bandwidths < 1:
        raise ValueError(f"num_bandwidths must be >= 1, got {num_bandwidths}")
    if floor < 0:
        raise ValueError(f"floor must be >= 0, got {floor}")
    if steepness <= 0:
        raise ValueError(f"steepness must be > 0, got {steepness}")
    if vertex is None:
        vertex = (num_bandwidths - 1) / 2.0
    idx = np.arange(num_bandwidths, dtype=float)
    w = floor + steepness * (idx - vertex) ** 2
    return ensure_probability_vector(w, "parabolic weights")


def expected_bandwidth(bandwidths, weights) -> float:
    """Probability-weighted mean hop bandwidth (the paper's "average
    bandwidth utilization")."""
    b = np.asarray(bandwidths, dtype=float)
    w = ensure_probability_vector(weights, "weights")
    if b.size != w.size:
        raise ValueError("bandwidths and weights must have the same length")
    return float(np.sum(b * w))


def expected_throughput(bandwidths, weights, bits_per_hz: float = BITS_PER_HZ) -> float:
    """Expected data rate in bit/s for a hop distribution.

    The paper's PHY carries B/8 bit/s at bandwidth B (spreading factor 8),
    so throughput is the weighted mean bandwidth times ``bits_per_hz``.
    """
    return expected_bandwidth(bandwidths, weights) * bits_per_hz


def pattern_weights(name: str, bandwidths) -> np.ndarray:
    """Look up one of the three named paper patterns for a bandwidth set.

    ``"parabolic"`` returns the paper's Table-1 weights when the set has
    seven bandwidths, otherwise the analytic bathtub shape.
    """
    b = np.asarray(bandwidths, dtype=float)
    key = name.lower()
    if key == "linear":
        return linear_weights(b.size)
    if key == "exponential":
        return exponential_weights(b)
    if key == "parabolic":
        if b.size == PAPER_PARABOLIC_WEIGHTS.size:
            return PAPER_PARABOLIC_WEIGHTS.copy()
        return parabolic_weights(b.size)
    raise ValueError(f"unknown hopping pattern {name!r}; use linear/exponential/parabolic")


def pattern_spec(pattern) -> str | list[float]:
    """The JSON-able form of a hop pattern (name or explicit weights).

    Named patterns serialize as their registry name; explicit weight
    vectors as plain float lists.  :func:`pattern_from_spec` inverts it.
    """
    if isinstance(pattern, str):
        key = pattern.lower()
        if key not in PATTERN_NAMES:
            raise ValueError(f"unknown hopping pattern {pattern!r}; use one of {PATTERN_NAMES}")
        return key
    w = np.asarray(pattern, dtype=float)
    if w.ndim != 1 or w.size == 0:
        raise ValueError("pattern weights must be a non-empty 1-D sequence")
    return [float(v) for v in w]


def pattern_from_spec(spec) -> "str | np.ndarray":
    """Rebuild a hop pattern from :func:`pattern_spec` output.

    A string resolves against the named registry; a list becomes an
    explicit weight vector.
    """
    if isinstance(spec, str):
        key = spec.lower()
        if key not in PATTERN_NAMES:
            raise ValueError(f"unknown hopping pattern {spec!r}; use one of {PATTERN_NAMES}")
        return key
    if isinstance(spec, (list, tuple)):
        if not spec or not all(
            isinstance(v, (int, float)) and not isinstance(v, bool) for v in spec
        ):
            raise ValueError("pattern weights must be a non-empty list of numbers")
        return np.asarray(spec, dtype=float)
    raise ValueError(f"pattern spec must be a name or weight list, got {type(spec).__name__}")
