"""The seed-synchronized session layer: state machine + slot engine.

:class:`SessionManager` runs one session at one (SNR, SJR) operating
point.  Both ends share a pre-shared rendezvous configuration (the
spec's ``config``) and a deterministic hop-seed generator
(:mod:`repro.protocol.hopseed`); data flows in *epochs* of
``packets_per_epoch`` dwell slots, each epoch hopping under its own
generator seed.  The state machine is::

          +--------------------------------------------+
          v                                            |
    IDLE --> HANDSHAKE --> SYNCED --> DESYNCED --> RESYNC
                 |                                     |
                 +----------> DEGRADED <---------------+
                         (retry budget exhausted:
                          static widest band, watchdogs off)

Desync is detected by two watchdogs: ``crc_fail_threshold`` consecutive
frame failures inside an epoch, or an epoch whose accepted fraction
falls below ``min_epoch_utilization``.  Either sends the session to
RESYNC: the epoch counter advances (the poisoned epoch is abandoned),
and up to ``resync_retries`` handshake rounds of ``sync_timeout``
attempts each — separated by deterministic exponential backoff
(``backoff_base << round`` idle slots) — try to re-agree on the seed
over the rendezvous channel.  Exhausting the budget degrades the
session to the static widest band, where hopping (and the watchdogs)
are off but traffic still drains.

Determinism contract: data transmission ``k`` draws its channel noise
from ``child_rng(seed, "packet", k)`` and handshake transmission ``j``
from ``child_rng(seed, "handshake", j)`` — *disjoint substreams*, so
protocol faults that add or drop handshakes never shift the data-plane
noise, which is what makes the chaos equivalence tests exact instead of
statistical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import TYPE_CHECKING

import numpy as np

from repro.channel.link_medium import Medium
from repro.core.paths import RxPath, TxPath, draw_jammer_wave
from repro.jamming.registry import jammer_from_spec
from repro.protocol.hopseed import HopSeedGenerator, seed_commitment, seed_generator_from_spec
from repro.protocol.packetizer import (
    Fragment,
    PacketKind,
    ProtocolError,
    Reassembler,
    build_fragment,
    fragment_message,
    parse_fragment,
)
from repro.protocol.spec import HANDSHAKE_CHUNK_BYTES, SessionSpec
from repro.utils.rng import child_rng, derive_seed

if TYPE_CHECKING:
    from repro.jamming.base import Jammer
    from repro.runtime.faults import FaultPlan

__all__ = ["SessionState", "SessionStats", "SessionManager", "simulate_session"]

#: cap on the exponential backoff between re-sync rounds, in idle slots
MAX_BACKOFF_SLOTS = 64


class SessionState(Enum):
    """Where the session state machine currently is."""

    IDLE = "idle"
    HANDSHAKE = "handshake"
    SYNCED = "synced"
    DESYNCED = "desynced"
    RESYNC = "resync"
    DEGRADED = "degraded"


@dataclass
class SessionStats:
    """Everything a session run produced, in bit-identity-friendly form.

    Counters and logs are plain ints/strings/bools, so two runs can be
    compared with ``stats_a.to_dict() == stats_b.to_dict()`` — the form
    the serial-vs-pool and chaos-equivalence tests use.
    """

    snr_db: float
    sjr_db: float
    total_messages: int
    payload_bits_total: int
    sample_rate: float
    delivered: dict[int, bytes] = field(default_factory=dict)
    data_tx: int = 0
    data_accepted: int = 0
    handshake_tx: int = 0
    handshake_accepted: int = 0
    handshake_dropped: int = 0
    desync_count: int = 0
    desync_injected: int = 0
    resync_count: int = 0
    resync_latencies: list[int] = field(default_factory=list)
    degraded: bool = False
    final_state: str = SessionState.IDLE.value
    slots_used: int = 0
    airtime_samples: int = 0
    epochs_completed: int = 0
    reassembly_crc_failures: int = 0
    transitions: list[tuple[int, str, str]] = field(default_factory=list)
    transmissions: list[tuple[str, int, bool]] = field(default_factory=list)

    @property
    def delivery_ratio(self) -> float:
        """Fraction of the traffic's messages delivered intact."""
        if not self.total_messages:
            return 0.0
        return len(self.delivered) / self.total_messages

    @property
    def goodput_bps(self) -> float:
        """Delivered payload bits per second of airtime (handshakes included)."""
        if self.airtime_samples <= 0:
            return 0.0
        delivered_bits = 8 * sum(len(m) for m in self.delivered.values())
        return delivered_bits / (self.airtime_samples / self.sample_rate)

    @property
    def data_per(self) -> float:
        """Packet error rate of the data-plane transmissions."""
        if not self.data_tx:
            return 0.0
        return 1.0 - self.data_accepted / self.data_tx

    @property
    def mean_resync_latency(self) -> float:
        """Mean slots from desync detection to SYNCED re-entry (0 if none)."""
        if not self.resync_latencies:
            return 0.0
        return float(np.mean(self.resync_latencies))

    def to_dict(self) -> dict:
        """JSON-able snapshot; equality of two snapshots == bit-identity."""
        return {
            "snr_db": float(self.snr_db),
            "sjr_db": float(self.sjr_db),
            "total_messages": self.total_messages,
            "delivered_ids": sorted(self.delivered),
            "delivery_ratio": self.delivery_ratio,
            "goodput_bps": self.goodput_bps,
            "data_per": self.data_per,
            "data_tx": self.data_tx,
            "data_accepted": self.data_accepted,
            "handshake_tx": self.handshake_tx,
            "handshake_accepted": self.handshake_accepted,
            "handshake_dropped": self.handshake_dropped,
            "desync_count": self.desync_count,
            "desync_injected": self.desync_injected,
            "resync_count": self.resync_count,
            "resync_latencies": list(self.resync_latencies),
            "mean_resync_latency": self.mean_resync_latency,
            "degraded": self.degraded,
            "final_state": self.final_state,
            "slots_used": self.slots_used,
            "airtime_samples": self.airtime_samples,
            "epochs_completed": self.epochs_completed,
            "reassembly_crc_failures": self.reassembly_crc_failures,
            "transitions": [list(t) for t in self.transitions],
            "transmissions": [list(t) for t in self.transmissions],
        }


class SessionManager:
    """One session at one operating point, run slot by slot.

    Parameters
    ----------
    spec:
        The session spec (traffic, jammer, hop-seed generator, budgets).
    snr_db, sjr_db:
        The channel operating point of this run.
    faults:
        Optional :class:`~repro.runtime.faults.FaultPlan` supplying the
        protocol-level ``drop-handshake`` / ``desync`` decisions.
    """

    def __init__(
        self,
        spec: SessionSpec,
        snr_db: float,
        sjr_db: float,
        faults: "FaultPlan | None" = None,
    ) -> None:
        self.spec = spec
        self.snr_db = float(snr_db)
        self.sjr_db = float(sjr_db)
        self.faults = faults
        config = spec.config
        self.mtu = config.payload_bytes
        self.whiten_key = spec.seed
        self.jammer: "Jammer" = jammer_from_spec(spec.jammer, sample_rate=config.sample_rate)
        self.generator: HopSeedGenerator = seed_generator_from_spec(spec.seed_generator)
        self.medium = Medium(config.sample_rate)
        # The rendezvous channel is the *pre-shared* configuration itself
        # (config.seed): both ends always know it, and when the config
        # hops it stays jam-resistant — a static rendezvous band would
        # hand the follower a fixed target and drag every re-sync down
        # with it.  The degraded fallback, by contrast, is deliberately
        # the static widest band (maximum raw rate, no seed agreement
        # needed).
        self.rendezvous_tx = TxPath(config)
        self.rendezvous_rx = RxPath(config)
        widest = float(np.max(config.bandwidth_set.as_array()))
        static = config.with_fixed_bandwidth(widest)
        self.static_tx = TxPath(static)
        self.static_rx = RxPath(static)
        self.messages = spec.traffic.messages()
        self.pending: deque[tuple[int, bytes]] = deque()
        for message_id, message in enumerate(self.messages):
            for frag in fragment_message(message, self.mtu, message_id, self.whiten_key):
                self.pending.append((message_id, frag))
        self.reassembler = Reassembler()
        self.state = SessionState.IDLE
        self.epoch = 0
        self.data_counter = 0
        self.hs_counter = 0
        self.degraded_index = 0
        self.budget = spec.slot_budget()
        self.stats = SessionStats(
            snr_db=self.snr_db,
            sjr_db=self.sjr_db,
            total_messages=len(self.messages),
            payload_bits_total=8 * sum(len(m) for m in self.messages),
            sample_rate=config.sample_rate,
        )

    # -- state machine plumbing -----------------------------------------------

    def _enter(self, state: SessionState) -> None:
        if state is self.state:
            return
        self.stats.transitions.append((self.stats.slots_used, self.state.value, state.value))
        self.state = state

    # -- slot primitives ------------------------------------------------------

    def _transmit(
        self,
        tx: TxPath,
        rx: RxPath,
        payload: bytes,
        packet_index: int,
        rng: np.random.Generator,
    ) -> tuple[bool, int]:
        """One dwell slot on the air: ``(accepted, airtime_samples)``.

        The RNG contract matches the link drivers: the jammer waveform is
        drawn first (even when not injected), then the medium noise.
        """
        packet, air = tx.emit(packet_index=packet_index, payload=payload)
        jam_wave = draw_jammer_wave(self.jammer, packet, self.sjr_db, rng)
        block = self.medium.combine(
            air, self.snr_db, jammer=jam_wave, sjr_db=self.sjr_db, rng=rng
        )
        outcome = rx.receive_packet(packet, block.samples, packet_index)
        return outcome.accepted, packet.num_samples

    def _data_slot(self, tx: TxPath, rx: RxPath, packet_index: int) -> bool:
        """Transmit the head-of-queue fragment; requeue it on failure."""
        message_id, frag = self.pending[0]
        index = self.data_counter
        self.data_counter += 1
        rng = child_rng(self.spec.seed, "packet", str(index))
        accepted, samples = self._transmit(tx, rx, frag, packet_index, rng)
        stats = self.stats
        stats.slots_used += 1
        stats.airtime_samples += samples
        stats.data_tx += 1
        stats.transmissions.append(("data", index, accepted))
        if not accepted:
            self.pending.rotate(-1)
            return False
        self.pending.popleft()
        stats.data_accepted += 1
        try:
            parsed = parse_fragment(frag, self.whiten_key)
            message = self.reassembler.add(parsed)
        except ProtocolError:
            message = None
        stats.reassembly_crc_failures = self.reassembler.crc_failures
        if message is not None:
            stats.delivered[message_id] = message
        return True

    def _control_slot(self, frag: bytes, label: str) -> Fragment | None:
        """One handshake transmission over the rendezvous channel."""
        index = self.hs_counter
        self.hs_counter += 1
        rng = child_rng(self.spec.seed, "handshake", str(index))
        accepted, samples = self._transmit(
            self.rendezvous_tx, self.rendezvous_rx, frag, index, rng
        )
        stats = self.stats
        stats.slots_used += 1
        stats.airtime_samples += samples
        stats.handshake_tx += 1
        stats.transmissions.append((label, index, accepted))
        if not accepted:
            return None
        stats.handshake_accepted += 1
        try:
            return parse_fragment(frag, self.whiten_key)
        except ProtocolError:
            return None

    # -- handshake / re-sync --------------------------------------------------

    def _handshake_payload(self, kind: PacketKind) -> bytes:
        epoch_seed = self.generator.seed_for_epoch(self.epoch)
        chunk = self.epoch.to_bytes(4, "big") + seed_commitment(epoch_seed).to_bytes(4, "big")
        assert len(chunk) == HANDSHAKE_CHUNK_BYTES
        return build_fragment(
            kind, self.epoch % 256, 0, 1, chunk, self.mtu, self.whiten_key
        )

    def _handshake_exchange(self) -> bool:
        """One handshake attempt: seed offer plus acknowledgment.

        The transmitter offers ``(epoch, commitment)`` over the
        rendezvous channel; the receiver recomputes the commitment from
        its own generator and, on agreement, acknowledges.  Both frames
        must decode for the attempt to succeed.
        """
        offer = self._control_slot(self._handshake_payload(PacketKind.HANDSHAKE), "handshake")
        if offer is None or offer.kind is not PacketKind.HANDSHAKE:
            return False
        offered_epoch = int.from_bytes(offer.chunk[:4], "big")
        offered_commit = int.from_bytes(offer.chunk[4:HANDSHAKE_CHUNK_BYTES], "big")
        local_commit = seed_commitment(self.generator.seed_for_epoch(offered_epoch))
        if local_commit != offered_commit:
            return False
        ack = self._control_slot(self._handshake_payload(PacketKind.HANDSHAKE_ACK), "ack")
        return ack is not None and ack.kind is PacketKind.HANDSHAKE_ACK

    def _sync_episode(self) -> bool:
        """Run one full handshake episode (rounds x attempts, with backoff).

        Returns True when the session reaches SYNCED.  Returns False when
        the slot budget ran out mid-episode (state unchanged) or the
        retry budget was exhausted (session DEGRADED).
        """
        spec = self.spec
        retries = int(spec.resync_retries or 1)
        timeout = int(spec.sync_timeout or 1)
        for round_index in range(retries):
            if round_index > 0:
                backoff = min(spec.backoff_base << round_index, MAX_BACKOFF_SLOTS)
                self.stats.slots_used += backoff
            for attempt in range(timeout):
                if self.stats.slots_used >= self.budget:
                    return False
                if (
                    attempt == 0
                    and self.faults is not None
                    and self.faults.should("drop-handshake", str(self.epoch), str(round_index))
                ):
                    # Lost before the air: one slot elapses, nothing is
                    # transmitted, and no RNG substream is consumed.
                    self.stats.slots_used += 1
                    self.stats.handshake_dropped += 1
                    self.stats.transmissions.append(("drop-handshake", round_index, False))
                    continue
                if self._handshake_exchange():
                    self._enter(SessionState.SYNCED)
                    return True
        self._degrade()
        return False

    def _degrade(self) -> None:
        """Give up on seed sync: static widest band, watchdogs off."""
        self.stats.degraded = True
        self._enter(SessionState.DEGRADED)

    # -- epochs ---------------------------------------------------------------

    def _epoch_paths(self) -> tuple[TxPath, RxPath]:
        """TX/RX paths for the current epoch (RX possibly fault-desynced)."""
        epoch_seed = self.generator.seed_for_epoch(self.epoch)
        rx_seed = epoch_seed
        if self.faults is not None and self.faults.should("desync", str(self.epoch)):
            rx_seed = derive_seed(epoch_seed, "desynced")
            self.stats.desync_injected += 1
        config = self.spec.config
        return (
            TxPath(replace(config, seed=epoch_seed)),
            RxPath(replace(config, seed=rx_seed)),
        )

    def _run_epoch(self) -> bool:
        """Run one SYNCED data epoch; returns False when a watchdog fired."""
        spec = self.spec
        tx, rx = self._epoch_paths()
        epoch_tx = 0
        epoch_accepted = 0
        streak = 0
        for packet_index in range(spec.packets_per_epoch):
            if not self.pending or self.stats.slots_used >= self.budget:
                break
            accepted = self._data_slot(tx, rx, packet_index)
            epoch_tx += 1
            if accepted:
                epoch_accepted += 1
                streak = 0
            else:
                streak += 1
                if streak >= spec.crc_fail_threshold:
                    return False
        if epoch_tx and self.pending and epoch_accepted / epoch_tx < spec.min_epoch_utilization:
            return False
        return True

    # -- top level ------------------------------------------------------------

    def run(self) -> SessionStats:
        """Drive the session to completion (or slot-budget exhaustion)."""
        stats = self.stats
        self._enter(SessionState.HANDSHAKE)
        self._sync_episode()
        while self.pending and stats.slots_used < self.budget:
            if self.state is SessionState.DEGRADED:
                index = self.degraded_index
                self.degraded_index += 1
                self._data_slot(self.static_tx, self.static_rx, index)
                continue
            if self.state is not SessionState.SYNCED:
                break  # slot budget died inside a handshake episode
            if self._run_epoch():
                self.epoch += 1
                stats.epochs_completed += 1
                continue
            stats.desync_count += 1
            self._enter(SessionState.DESYNCED)
            detection_slot = stats.slots_used
            self.epoch += 1  # abandon the poisoned epoch
            self._enter(SessionState.RESYNC)
            if self._sync_episode():
                stats.resync_count += 1
                stats.resync_latencies.append(stats.slots_used - detection_slot)
        stats.final_state = self.state.value
        return stats


def simulate_session(
    spec: SessionSpec,
    snr_db: float,
    sjr_db: float,
    faults: "FaultPlan | None" = None,
) -> SessionStats:
    """Run one session at one operating point; see :class:`SessionManager`."""
    return SessionManager(spec, snr_db, sjr_db, faults=faults).run()
