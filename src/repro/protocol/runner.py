"""Spec-driven session execution.

:func:`run_session` evaluates a :class:`~repro.protocol.spec.SessionSpec`'s
operating-point grid into a tidy
:class:`~repro.analysis.sweep.SweepResult`, going through the same spec
transport as scenario/network/arena runs: workers receive only the
session's ``to_dict()`` payload plus ``(snr_db, sjr_db)`` tuples and
rebuild everything locally.  Each grid point gets a *fresh*
:class:`~repro.protocol.session.SessionManager` (fresh jammer, fresh
reassembler), so stateful jammers are order-free at the sweep level and a
pooled run is bit-identical to a serial one.

Protocol faults (``REPRO_FAULTS=drop-handshake:p,desync:p``) *change the
result* — unlike crash/hang, which only exercise recovery — so the
active protocol-fault plan is folded into the cache key: a faulted run
never aliases a fault-free entry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.runtime import (
    ParallelExecutor,
    ResultCache,
    SweepCheckpoint,
    SweepTiming,
    make_checkpoint,
    resolve_batch,
    stable_hash,
)
from repro.runtime.faults import FaultPlan

if TYPE_CHECKING:
    from repro.analysis.sweep import SweepResult
    from repro.protocol.spec import SessionSpec

__all__ = ["SESSION_COLUMNS", "evaluate_session_point", "run_session"]

#: column order of every session sweep result.
SESSION_COLUMNS = (
    "snr_db",
    "sjr_db",
    "delivery_ratio",
    "goodput_bps",
    "data_per",
    "data_tx",
    "handshake_tx",
    "desync_count",
    "resync_count",
    "mean_resync_latency",
    "degraded",
)


def _cache_token(cache: "ResultCache | str | bool | None") -> "str | bool | None":
    """Flatten a cache argument to picklable data for the spec payload."""
    if cache is None or cache is False:
        return cache
    if isinstance(cache, ResultCache):
        return cache.root
    return str(cache)


def _protocol_fault_key(plan: "FaultPlan | None") -> dict:
    """The cache-key fields of the active protocol-level fault plan.

    Only the protocol kinds matter: crash/hang/corrupt-cache faults are
    recovery drills that leave results bit-identical, but drop-handshake
    and desync alter the session outcome and must key the cache.
    """
    if plan is None or (plan.drop_handshake <= 0.0 and plan.desync <= 0.0):
        return {}
    return {
        "drop_handshake": plan.drop_handshake,
        "desync": plan.desync,
        "fault_seed": plan.seed,
    }


def evaluate_session_point(payload: dict, point: tuple) -> dict:
    """Evaluate one ``(snr_db, sjr_db)`` grid point of a session.

    ``payload`` is plain data — ``{"session": SessionSpec.to_dict(),
    "cache": None | False | <root path>}`` — and everything (spec,
    jammer, hop-seed generator, fault plan) is rebuilt inside the worker,
    so the call is a pure function of its arguments and the inherited
    ``REPRO_FAULTS`` environment.
    """
    from repro.protocol.session import simulate_session
    from repro.protocol.spec import SessionSpec

    spec = SessionSpec.from_dict(payload["session"])
    token = payload.get("cache")
    cache = ResultCache(token) if isinstance(token, str) else token
    snr_db, sjr_db = point
    faults = FaultPlan.from_env()
    key: dict[str, Any] | None = None
    store = cache if isinstance(cache, ResultCache) else None
    if store is not None:
        key = {
            "kind": "session-point",
            "session": payload["session"],
            "snr_db": float(snr_db),
            "sjr_db": float(sjr_db),
            **_protocol_fault_key(faults),
        }
        hit = store.get(key)
        if isinstance(hit, dict):
            return hit
    stats = simulate_session(spec, float(snr_db), float(sjr_db), faults=faults)
    record = {
        "snr_db": float(snr_db),
        "sjr_db": float(sjr_db),
        "delivery_ratio": stats.delivery_ratio,
        "goodput_bps": stats.goodput_bps,
        "data_per": stats.data_per,
        "data_tx": float(stats.data_tx),
        "handshake_tx": float(stats.handshake_tx),
        "desync_count": float(stats.desync_count),
        "resync_count": float(stats.resync_count),
        "mean_resync_latency": stats.mean_resync_latency,
        "degraded": 1.0 if stats.degraded else 0.0,
    }
    if store is not None and key is not None:
        store.put(key, record)
    return record


def run_session(
    spec: "SessionSpec",
    *,
    executor: ParallelExecutor | None = None,
    cache: "ResultCache | str | bool | None" = None,
    checkpoint: "SweepCheckpoint | str | bool | None" = None,
) -> "SweepResult":
    """Evaluate a session spec's grid into a :class:`SweepResult`.

    The knobs mirror :func:`repro.scenario.runner.run_scenario` exactly:
    ``executor`` defaults to the ``REPRO_WORKERS`` pool (serial when
    unset), ``cache`` defers to ``REPRO_CACHE`` (protocol-fault plans are
    part of the key), and ``checkpoint`` defers to ``REPRO_CHECKPOINT``
    for crash-safe incremental resume under the spec's canonical hash.
    Rows land in grid order regardless of completion order, so serial
    and pooled runs emit bit-identical CSVs.
    """
    from repro.analysis.sweep import SweepResult

    ex = executor if executor is not None else ParallelExecutor.from_env()
    spec_dict = spec.to_dict()
    payload = {"session": spec_dict, "cache": _cache_token(cache)}
    points = list(spec.points())
    total = len(points)
    ckpt = make_checkpoint(checkpoint, stable_hash({"session": spec_dict}), total)
    loaded: dict[int, Any] = {} if ckpt is None else ckpt.load()
    pending = [i for i in range(total) if not isinstance(loaded.get(i), dict)]
    records: list[dict[str, float] | None] = [
        loaded[i] if i not in pending else None for i in range(total)
    ]
    seconds = [0.0] * total
    wall = 0.0
    workers = 1
    retries = 0
    if pending:
        on_result: Callable[[int, object], None] | None = None
        if ckpt is not None:
            active = ckpt

            def _persist(local_index: int, value: object) -> None:
                active.record(pending[local_index], value)

            on_result = _persist
        try:
            report = ex.map_spec(
                evaluate_session_point,
                payload,
                [points[i] for i in pending],
                on_result=on_result,
            )
        except BaseException:
            # Keep whatever finished: an interrupted sweep resumes from here.
            if ckpt is not None:
                ckpt.flush()
            raise
        for index, value, secs in zip(pending, report.values, report.seconds):
            records[index] = value
            seconds[index] = secs
        wall = report.wall_seconds
        workers = report.workers
        retries = report.retries
    if ckpt is not None:
        ckpt.complete()
    result = SweepResult(columns=SESSION_COLUMNS)
    for record in records:
        assert record is not None  # every index is either loaded or pending
        result.add(**record)
    result.timing = SweepTiming(
        wall_seconds=wall,
        point_seconds=tuple(seconds),
        workers=workers,
        packets=spec.num_fragments() * total,
        batch_size=resolve_batch(),
        retries=retries,
    )
    return result
