"""Deterministic hop-seed generators shared by both session ends.

The paper's security model gives transmitter and receiver one pre-shared
secret; a long-lived session must expand it into a *stream* of per-epoch
hop seeds so that compromising (or brute-forcing) one dwell schedule
reveals nothing about the next.  Both ends instantiate the same generator
from the same spec and stay synchronized for free — until jamming or an
injected ``desync`` fault makes them disagree on the epoch, which is
exactly what the session layer's handshake re-establishes.

Two keyed-hash stream shapes are provided:

``counter``
    One fresh seed per epoch: ``seed_for_epoch(e)`` hashes ``(key, e)``.
``time-slotted``
    Time-of-day style rotation: epochs are grouped into slots of
    ``slot_epochs`` and every epoch in a slot shares the slot's seed —
    the model of a real deployment that rotates keys on a wall-clock
    schedule rather than per exchange.

The registry mirrors :mod:`repro.jamming.registry`: specs are plain JSON
mappings with a ``"type"`` field, unknown fields fail with the field
named, and :func:`verify_seed_generator_roundtrip` audits that ``spec()``
loses nothing.
"""

from __future__ import annotations

import inspect

from repro.utils.rng import derive_seed

__all__ = [
    "HopSeedGenerator",
    "CounterSeedGenerator",
    "TimeSlottedSeedGenerator",
    "SEED_GENERATOR_REGISTRY",
    "seed_generator_from_spec",
    "seed_generator_names",
    "verify_seed_generator_roundtrip",
    "seed_commitment",
]


class HopSeedGenerator:
    """Base class: a deterministic epoch -> hop-seed stream."""

    def seed_for_epoch(self, epoch: int) -> int:
        """The hop seed both ends use during ``epoch`` (>= 0)."""
        raise NotImplementedError

    def spec(self) -> dict:
        """JSON-able construction spec; ``seed_generator_from_spec`` inverts it."""
        raise NotImplementedError

    @classmethod
    def from_spec(cls, spec: dict) -> "HopSeedGenerator":
        """Rebuild a generator from its :meth:`spec` output."""
        params = {k: v for k, v in spec.items() if k != "type"}
        return cls(**params)

    @staticmethod
    def _check_epoch(epoch: int) -> int:
        if isinstance(epoch, bool) or not isinstance(epoch, int) or epoch < 0:
            raise ValueError(f"epoch must be an integer >= 0, got {epoch!r}")
        return epoch


class CounterSeedGenerator(HopSeedGenerator):
    """Counter-keyed stream: an independent hop seed every epoch."""

    def __init__(self, key: int = 0) -> None:
        if isinstance(key, bool) or not isinstance(key, int):
            raise ValueError(f"key must be an integer, got {key!r}")
        self.key = key

    def seed_for_epoch(self, epoch: int) -> int:
        return derive_seed(self.key, "hopseed", "counter", str(self._check_epoch(epoch)))

    def spec(self) -> dict:
        return {"type": "counter", "key": int(self.key)}


class TimeSlottedSeedGenerator(HopSeedGenerator):
    """Time-of-day style stream: the seed rotates every ``slot_epochs`` epochs."""

    def __init__(self, key: int = 0, slot_epochs: int = 4) -> None:
        if isinstance(key, bool) or not isinstance(key, int):
            raise ValueError(f"key must be an integer, got {key!r}")
        if isinstance(slot_epochs, bool) or not isinstance(slot_epochs, int) or slot_epochs < 1:
            raise ValueError(f"slot_epochs must be an integer >= 1, got {slot_epochs!r}")
        self.key = key
        self.slot_epochs = slot_epochs

    def seed_for_epoch(self, epoch: int) -> int:
        slot = self._check_epoch(epoch) // self.slot_epochs
        return derive_seed(self.key, "hopseed", "slot", str(slot))

    def spec(self) -> dict:
        return {"type": "time-slotted", "key": int(self.key), "slot_epochs": int(self.slot_epochs)}


#: registry key -> generator class; keys are the ``"type"`` values of specs.
SEED_GENERATOR_REGISTRY: dict[str, type[HopSeedGenerator]] = {
    "counter": CounterSeedGenerator,
    "time-slotted": TimeSlottedSeedGenerator,
}


def seed_generator_names() -> list[str]:
    """Registered seed-generator type names, sorted."""
    return sorted(SEED_GENERATOR_REGISTRY)


def seed_generator_from_spec(spec: dict | HopSeedGenerator) -> HopSeedGenerator:
    """Build a hop-seed generator from a registry spec mapping.

    Mirrors :func:`repro.jamming.registry.jammer_from_spec`: the spec must
    carry a registered ``"type"``, unknown fields fail with the offending
    field named, and an existing generator passes through unchanged.
    """
    if isinstance(spec, HopSeedGenerator):
        return spec
    if not isinstance(spec, dict):
        raise ValueError(f"seed-generator spec must be a mapping, got {type(spec).__name__}")
    if "type" not in spec:
        raise ValueError("seed-generator spec must contain a 'type' field")
    name = spec["type"]
    if not isinstance(name, str) or name.lower() not in SEED_GENERATOR_REGISTRY:
        raise ValueError(
            f"unknown seed-generator type {name!r}; registered types: {seed_generator_names()}"
        )
    cls = SEED_GENERATOR_REGISTRY[name.lower()]
    params = {k: v for k, v in spec.items() if k != "type"}
    accepted = set(inspect.signature(cls.__init__).parameters) - {"self"}
    unknown = set(params) - accepted
    if unknown:
        raise ValueError(
            f"seed-generator spec field(s) {sorted(unknown)} not recognized for type "
            f"{name!r}; accepted: {sorted(accepted)}"
        )
    try:
        return cls.from_spec({"type": name, **params})
    except TypeError as exc:
        raise ValueError(f"seed-generator spec for type {name!r} is incomplete: {exc}") from None


def verify_seed_generator_roundtrip(generator: HopSeedGenerator) -> dict:
    """Audit that a generator's ``spec()`` loses no constructor field.

    Rebuilds the generator from its own spec and fails with a field-named
    error when the rebuilt spec drifts, when a constructor parameter is
    silently dropped, or when the rebuilt stream diverges from the
    original on the first epochs.  Returns the validated spec on success.
    """
    spec = generator.spec()
    rebuilt = seed_generator_from_spec(spec)
    rebuilt_spec = rebuilt.spec()
    if rebuilt_spec != spec:
        drifted = sorted(
            k for k in set(spec) | set(rebuilt_spec) if spec.get(k) != rebuilt_spec.get(k)
        )
        raise ValueError(
            f"{type(generator).__name__}.spec() does not round-trip; "
            f"field(s) {drifted} drift on rebuild"
        )
    accepted = set(inspect.signature(type(generator).__init__).parameters) - {"self"}
    for name in sorted(accepted - set(spec)):
        if not (hasattr(generator, name) and hasattr(rebuilt, name)):
            continue
        if getattr(generator, name) != getattr(rebuilt, name):
            raise ValueError(
                f"{type(generator).__name__}.spec() silently drops constructor "
                f"field {name!r} (value {getattr(generator, name)!r} lost on rebuild)"
            )
    for epoch in range(4):
        if generator.seed_for_epoch(epoch) != rebuilt.seed_for_epoch(epoch):
            raise ValueError(
                f"{type(generator).__name__} rebuilt from its spec diverges at epoch {epoch}"
            )
    return spec


def seed_commitment(epoch_seed: int) -> int:
    """A 32-bit keyed-hash commitment to an epoch's hop seed.

    Handshake frames carry this instead of the seed itself, so each end
    can check that the other derived the *same* seed without putting the
    seed on the air.  (Both ends already share the generator key; the
    commitment only has to detect disagreement, not hide anything from a
    key holder.)
    """
    return derive_seed(int(epoch_seed), "commit") & 0xFFFFFFFF
