"""Seed-synchronized session layer over the BHSS link.

The paper's evaluation is per-packet; this subpackage adds the protocol
above it: messages are whitened, CRC-framed and fragmented onto PHY
frames (:mod:`repro.protocol.packetizer`), both ends derive per-epoch
hop seeds from a shared keyed-hash stream
(:mod:`repro.protocol.hopseed`), and a session state machine
(:mod:`repro.protocol.session`) detects seed desynchronization and
re-synchronizes over a rendezvous channel with bounded, deterministic
retry/backoff — degrading to the static widest band when the budget is
exhausted.

:class:`SessionSpec` files run through the same cache / checkpoint /
pool machinery as scenarios, via :func:`run_session`.
"""

from repro.protocol.hopseed import (
    SEED_GENERATOR_REGISTRY,
    CounterSeedGenerator,
    HopSeedGenerator,
    TimeSlottedSeedGenerator,
    seed_commitment,
    seed_generator_from_spec,
    seed_generator_names,
    verify_seed_generator_roundtrip,
)
from repro.protocol.packetizer import (
    Fragment,
    PacketKind,
    ProtocolError,
    Reassembler,
    build_fragment,
    fragment_message,
    parse_fragment,
    reassemble_message,
)
from repro.protocol.runner import SESSION_COLUMNS, evaluate_session_point, run_session
from repro.protocol.session import SessionManager, SessionState, SessionStats, simulate_session
from repro.protocol.spec import (
    MessageTrafficSpec,
    SessionError,
    SessionSpec,
    default_sync_retries,
    default_sync_timeout,
)
from repro.protocol.whitening import (
    DEFAULT_WHITEN_SEED,
    fragment_whiten_seed,
    whiten,
    whitening_sequence,
)

__all__ = [
    "ProtocolError",
    "PacketKind",
    "Fragment",
    "build_fragment",
    "parse_fragment",
    "fragment_message",
    "reassemble_message",
    "Reassembler",
    "whiten",
    "whitening_sequence",
    "fragment_whiten_seed",
    "DEFAULT_WHITEN_SEED",
    "HopSeedGenerator",
    "CounterSeedGenerator",
    "TimeSlottedSeedGenerator",
    "SEED_GENERATOR_REGISTRY",
    "seed_generator_from_spec",
    "seed_generator_names",
    "verify_seed_generator_roundtrip",
    "seed_commitment",
    "SessionError",
    "SessionSpec",
    "MessageTrafficSpec",
    "default_sync_retries",
    "default_sync_timeout",
    "SessionState",
    "SessionStats",
    "SessionManager",
    "simulate_session",
    "SESSION_COLUMNS",
    "evaluate_session_point",
    "run_session",
]
