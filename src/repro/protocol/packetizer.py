"""Message packetizer: fragments in PHY-payload clothing.

A session message is arbitrarily long; the PHY frame carries a fixed,
small payload.  The packetizer bridges the two:

* the message grows a CRC-32 tail (end-to-end integrity across
  fragments — the per-frame CRC-16 only covers one fragment),
* the result is split into chunks that fit the session MTU,
* each chunk rides behind a 5-byte fragment header
  ``[message_id | frag_index | total_frags | kind | chunk_len]``,
* everything after the header is whitened
  (:mod:`repro.protocol.whitening`) with a per-fragment keystream phase,
  then zero-padded to exactly the MTU so every fragment maps onto one
  fixed-geometry PHY frame.

The :class:`Reassembler` inverts all of it and is deliberately paranoid:
fragments may arrive reordered or duplicated (ARQ retransmissions), and
truncated or structurally inconsistent fragments raise
:class:`ProtocolError` instead of corrupting state — properties the
hypothesis wall in ``tests/test_properties_protocol.py`` drives.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable

from repro.phy.crc import crc32_ieee
from repro.protocol.whitening import fragment_whiten_seed, whiten

__all__ = [
    "ProtocolError",
    "PacketKind",
    "Fragment",
    "HEADER_BYTES",
    "MESSAGE_CRC_BYTES",
    "build_fragment",
    "parse_fragment",
    "fragment_message",
    "reassemble_message",
    "Reassembler",
]


class ProtocolError(ValueError):
    """A fragment or message failed structural validation."""


class PacketKind(IntEnum):
    """What a fragment carries: session data or sync control."""

    DATA = 0
    HANDSHAKE = 1
    HANDSHAKE_ACK = 2


#: fragment header: message_id, frag_index, total_frags, kind, chunk_len
HEADER_BYTES = 5

#: CRC-32 tail appended to every message before fragmentation
MESSAGE_CRC_BYTES = 4

#: smallest MTU that leaves room for the header and one chunk byte
MIN_MTU = HEADER_BYTES + 1


@dataclass(frozen=True)
class Fragment:
    """One parsed fragment: header fields plus the de-whitened chunk."""

    kind: PacketKind
    message_id: int
    frag_index: int
    total_frags: int
    chunk: bytes

    @property
    def key(self) -> tuple[int, int]:
        """The (message_id, frag_index) coordinate of this fragment."""
        return (self.message_id, self.frag_index)


def _check_byte(value: int, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int) or not 0 <= value <= 255:
        raise ProtocolError(f"{name} must be an integer in 0..255, got {value!r}")
    return value


def _check_mtu(mtu: int) -> int:
    if isinstance(mtu, bool) or not isinstance(mtu, int) or not MIN_MTU <= mtu <= 255:
        raise ProtocolError(f"mtu must be an integer in {MIN_MTU}..255, got {mtu!r}")
    return mtu


def build_fragment(
    kind: PacketKind,
    message_id: int,
    frag_index: int,
    total_frags: int,
    chunk: bytes,
    mtu: int,
    whiten_key: int,
) -> bytes:
    """One on-air fragment: header + whitened, zero-padded chunk (== MTU bytes)."""
    _check_mtu(mtu)
    _check_byte(message_id, "message_id")
    _check_byte(frag_index, "frag_index")
    _check_byte(total_frags, "total_frags")
    if total_frags < 1:
        raise ProtocolError(f"total_frags must be >= 1, got {total_frags}")
    if frag_index >= total_frags:
        raise ProtocolError(f"frag_index {frag_index} out of range for {total_frags} fragment(s)")
    capacity = mtu - HEADER_BYTES
    if len(chunk) > capacity:
        raise ProtocolError(f"chunk of {len(chunk)} bytes exceeds MTU capacity {capacity}")
    header = bytes([message_id, frag_index, total_frags, int(kind), len(chunk)])
    body = bytes(chunk) + bytes(capacity - len(chunk))
    seed = fragment_whiten_seed(whiten_key, message_id, frag_index)
    return header + whiten(body, seed)


def parse_fragment(data: bytes, whiten_key: int) -> Fragment:
    """Invert :func:`build_fragment`; raises :class:`ProtocolError` if malformed.

    Truncated fragments (shorter than the header, or shorter than the
    length their own header claims) and structurally impossible headers
    (index beyond the fragment count, unknown kind) are rejected before
    any state is touched.
    """
    data = bytes(data)
    if len(data) < HEADER_BYTES:
        raise ProtocolError(
            f"truncated fragment: {len(data)} byte(s), header needs {HEADER_BYTES}"
        )
    message_id, frag_index, total_frags, kind_value, chunk_len = data[:HEADER_BYTES]
    if total_frags < 1:
        raise ProtocolError("fragment header claims zero total fragments")
    if frag_index >= total_frags:
        raise ProtocolError(
            f"fragment header index {frag_index} out of range for {total_frags} fragment(s)"
        )
    try:
        kind = PacketKind(kind_value)
    except ValueError:
        raise ProtocolError(f"unknown fragment kind {kind_value}") from None
    body = data[HEADER_BYTES:]
    if chunk_len > len(body):
        raise ProtocolError(
            f"truncated fragment: header claims {chunk_len} chunk byte(s), "
            f"only {len(body)} present"
        )
    seed = fragment_whiten_seed(whiten_key, message_id, frag_index)
    chunk = whiten(body, seed)[:chunk_len]
    return Fragment(
        kind=kind,
        message_id=message_id,
        frag_index=frag_index,
        total_frags=total_frags,
        chunk=chunk,
    )


def fragment_message(
    message: bytes, mtu: int, message_id: int, whiten_key: int
) -> list[bytes]:
    """Split ``message`` + CRC-32 into on-air DATA fragments of ``mtu`` bytes."""
    _check_mtu(mtu)
    _check_byte(message_id, "message_id")
    crc = crc32_ieee(bytes(message))
    body = bytes(message) + crc.to_bytes(MESSAGE_CRC_BYTES, "big")
    capacity = mtu - HEADER_BYTES
    total = max(1, -(-len(body) // capacity))
    if total > 255:
        raise ProtocolError(
            f"message of {len(message)} bytes needs {total} fragments at MTU {mtu} (max 255)"
        )
    return [
        build_fragment(
            PacketKind.DATA,
            message_id,
            index,
            total,
            body[index * capacity : (index + 1) * capacity],
            mtu,
            whiten_key,
        )
        for index in range(total)
    ]


class Reassembler:
    """Order-free, duplicate-tolerant fragment collector.

    Feed parsed DATA fragments in any order (ARQ retransmissions arrive
    late and repeated); :meth:`add` returns the reassembled message the
    moment its last fragment lands and the end-to-end CRC-32 checks, and
    ``None`` otherwise.  A message whose CRC fails on completion is
    dropped (counted in :attr:`crc_failures`) and its id freed for a
    clean retransmission.
    """

    def __init__(self) -> None:
        self._partial: dict[int, dict[int, bytes]] = {}
        self._totals: dict[int, int] = {}
        self.crc_failures = 0

    def add(self, fragment: Fragment) -> bytes | None:
        """Fold one fragment in; returns the completed message, if any."""
        if fragment.kind is not PacketKind.DATA:
            raise ProtocolError(f"reassembler only accepts DATA fragments, got {fragment.kind.name}")
        known_total = self._totals.get(fragment.message_id)
        if known_total is not None and known_total != fragment.total_frags:
            raise ProtocolError(
                f"message {fragment.message_id}: fragment claims {fragment.total_frags} "
                f"total fragment(s), earlier fragments claimed {known_total}"
            )
        chunks = self._partial.setdefault(fragment.message_id, {})
        self._totals.setdefault(fragment.message_id, fragment.total_frags)
        chunks.setdefault(fragment.frag_index, fragment.chunk)
        if len(chunks) < fragment.total_frags:
            return None
        body = b"".join(chunks[i] for i in range(fragment.total_frags))
        del self._partial[fragment.message_id]
        del self._totals[fragment.message_id]
        if len(body) < MESSAGE_CRC_BYTES:
            self.crc_failures += 1
            return None
        message, tail = body[:-MESSAGE_CRC_BYTES], body[-MESSAGE_CRC_BYTES:]
        if crc32_ieee(message).to_bytes(MESSAGE_CRC_BYTES, "big") != tail:
            self.crc_failures += 1
            return None
        return message


def reassemble_message(fragments: Iterable[Fragment]) -> bytes:
    """Reassemble one message from its fragments, in any order.

    Raises :class:`ProtocolError` when fragments are missing or the
    end-to-end CRC-32 fails — the strict single-message convenience the
    property tests drive; live sessions use :class:`Reassembler`.
    """
    collector = Reassembler()
    fragment_list = list(fragments)
    if not fragment_list:
        raise ProtocolError("no fragments to reassemble")
    for fragment in fragment_list:
        message = collector.add(fragment)
        if message is not None:
            return message
    if collector.crc_failures:
        raise ProtocolError("message CRC-32 failed on reassembly")
    missing = sorted(
        set(range(fragment_list[0].total_frags)) - {f.frag_index for f in fragment_list}
    )
    raise ProtocolError(f"incomplete message: missing fragment indices {missing}")
