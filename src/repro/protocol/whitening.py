"""Payload whitening with the Fibonacci LFSR x^7 + x^4 + 1.

Long runs of identical payload bytes produce spectral lines that a
reactive jammer can key on; XOR-ing the payload with a pseudo-random
keystream flattens the spectrum regardless of content.  The keystream
generator is the 7-bit Fibonacci LFSR with polynomial x^7 + x^4 + 1 —
the whitening sequence of IEEE 802.15.4g and Bluetooth LE — whose
127-state cycle visits every non-zero state, so any non-zero 7-bit seed
selects a phase of the same maximal-length sequence.

Because whitening is a keystream XOR, it is an involution:
``whiten(whiten(data, s), s) == data`` for every payload and every valid
seed — the property the hypothesis wall in
``tests/test_properties_protocol.py`` proves exhaustively.
"""

from __future__ import annotations

from repro.utils.rng import derive_seed

__all__ = [
    "LFSR_ORDER",
    "DEFAULT_WHITEN_SEED",
    "whitening_sequence",
    "whiten",
    "fragment_whiten_seed",
]

#: register width of the whitening LFSR (x^7 + x^4 + 1)
LFSR_ORDER = 7

#: all-ones initial state, the 802.15.4g convention
DEFAULT_WHITEN_SEED = 0x7F

_STATE_MASK = (1 << LFSR_ORDER) - 1


def _check_seed(seed: int) -> int:
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise ValueError(f"whitening seed must be an integer, got {seed!r}")
    if not 1 <= seed <= _STATE_MASK:
        raise ValueError(
            f"whitening seed must be a non-zero {LFSR_ORDER}-bit state "
            f"(1..{_STATE_MASK}), got {seed}"
        )
    return seed


def whitening_sequence(num_bytes: int, seed: int = DEFAULT_WHITEN_SEED) -> bytes:
    """``num_bytes`` of the x^7 + x^4 + 1 keystream starting from ``seed``.

    One keystream bit per LFSR step (the register's low bit), packed
    LSB-first into bytes.  The zero state is unreachable from any valid
    seed, so the stream never degenerates.
    """
    _check_seed(seed)
    if num_bytes < 0:
        raise ValueError(f"num_bytes must be >= 0, got {num_bytes}")
    state = seed
    out = bytearray(num_bytes)
    for i in range(num_bytes):
        byte = 0
        for bit in range(8):
            byte |= (state & 1) << bit
            feedback = (state ^ (state >> 3)) & 1  # taps at x^7 and x^4
            state = (state >> 1) | (feedback << (LFSR_ORDER - 1))
        out[i] = byte
    return bytes(out)


def whiten(data: bytes, seed: int = DEFAULT_WHITEN_SEED) -> bytes:
    """XOR ``data`` with the whitening keystream (an involution).

    Applying :func:`whiten` twice with the same seed returns the input
    unchanged, which is why transmitter and receiver share one code path.
    """
    stream = whitening_sequence(len(data), seed)
    return bytes(a ^ b for a, b in zip(bytes(data), stream))


def fragment_whiten_seed(base_seed: int, message_id: int, frag_index: int) -> int:
    """The per-fragment whitening phase of a session's keystream.

    Derived from the session's whitening key and the fragment coordinates
    through the repo's keyed-hash seed derivation, then folded into the
    non-zero 7-bit state space — both ends compute it independently from
    shared data, and no two fragments of a message share a phase (up to
    the 127-state cycle).
    """
    raw = derive_seed(int(base_seed), "whiten", str(int(message_id)), str(int(frag_index)))
    return (raw % _STATE_MASK) + 1
