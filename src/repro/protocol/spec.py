"""Serializable session specs: :class:`SessionSpec` and traffic shape.

A session file looks like::

    {
      "name": "follower-session",
      "description": "seed-synchronized session vs a learning follower",
      "config": {"pattern": "parabolic", "seed": 42, "payload_bytes": 16},
      "jammer": {"type": "follower", "initial_bandwidth": 10000000.0},
      "seed_generator": {"type": "counter", "key": 7},
      "traffic": {"num_messages": 2, "message_bytes": 24, "seed": 3},
      "grid": {"snr_db": [15.0], "sjr_db": [-6.0, -10.0]},
      "packets_per_epoch": 6,
      "seed": 5
    }

Validation failures raise :class:`SessionError` naming the offending
field, exactly like the scenario/network/arena spec families, so session
files flow through ``repro-bhss scenario validate`` and the cache,
checkpoint and pool machinery unchanged.

The re-sync knobs default from the environment — ``REPRO_SYNC_RETRIES``
(re-sync rounds before degrading to the static widest band, default 3)
and ``REPRO_SYNC_TIMEOUT`` (handshake attempts per round, default 4) —
and are resolved to concrete integers at construction time, so the spec
a pool worker rebuilds carries the same budget the parent resolved.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.config import BHSSConfig
from repro.jamming.registry import jammer_from_spec
from repro.protocol.hopseed import seed_generator_from_spec
from repro.protocol.packetizer import HEADER_BYTES, MIN_MTU
from repro.utils.rng import child_rng

if TYPE_CHECKING:
    from repro.analysis.sweep import SweepResult
    from repro.runtime import ParallelExecutor, ResultCache

__all__ = [
    "SessionError",
    "MessageTrafficSpec",
    "SessionSpec",
    "default_sync_retries",
    "default_sync_timeout",
    "HANDSHAKE_CHUNK_BYTES",
]

#: a handshake chunk carries the epoch (4 bytes) + seed commitment (4 bytes)
HANDSHAKE_CHUNK_BYTES = 8


class SessionError(ValueError):
    """A session spec failed validation; the message names the field."""


def default_sync_retries() -> int:
    """The ``REPRO_SYNC_RETRIES`` re-sync round budget (default 3)."""
    raw = os.environ.get("REPRO_SYNC_RETRIES")
    if raw is None or not raw.strip():
        return 3
    try:
        value = int(raw)
    except ValueError:
        raise SessionError(f"REPRO_SYNC_RETRIES must be an integer, got {raw!r}") from None
    if value < 1:
        raise SessionError(f"REPRO_SYNC_RETRIES must be >= 1, got {value}")
    return value


def default_sync_timeout() -> int:
    """The ``REPRO_SYNC_TIMEOUT`` handshake attempts per round (default 4)."""
    raw = os.environ.get("REPRO_SYNC_TIMEOUT")
    if raw is None or not raw.strip():
        return 4
    try:
        value = int(raw)
    except ValueError:
        raise SessionError(f"REPRO_SYNC_TIMEOUT must be an integer, got {raw!r}") from None
    if value < 1:
        raise SessionError(f"REPRO_SYNC_TIMEOUT must be >= 1, got {value}")
    return value


def _require_int(value: Any, path: str, minimum: int | None = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SessionError(f"{path}: must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise SessionError(f"{path}: must be >= {minimum}, got {value}")
    return value


def _require_number(value: Any, path: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SessionError(f"{path}: must be a number, got {value!r}")
    return float(value)


def _grid_values(values: object, path: str) -> tuple[float, ...]:
    if not isinstance(values, (list, tuple)) or not values:
        raise SessionError(f"{path}: must be a non-empty list of numbers")
    return tuple(_require_number(v, f"{path}[{i}]") for i, v in enumerate(values))


@dataclass(frozen=True)
class MessageTrafficSpec:
    """Deterministic message workload of a session.

    ``num_messages`` pseudo-random messages of ``message_bytes`` each,
    drawn from the ``child_rng(seed, "message", i)`` substreams — a pure
    function of the spec, so transmitter, receiver, pool workers and the
    chaos tests all agree on the exact bytes in flight.
    """

    num_messages: int = 4
    message_bytes: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        _require_int(self.num_messages, "traffic.num_messages", minimum=1)
        if self.num_messages > 256:
            raise SessionError(
                f"traffic.num_messages: at most 256 (one id byte), got {self.num_messages}"
            )
        _require_int(self.message_bytes, "traffic.message_bytes", minimum=1)
        _require_int(self.seed, "traffic.seed")

    def messages(self) -> list[bytes]:
        """The session's message payloads, in transmission order."""
        return [
            child_rng(self.seed, "message", str(i))
            .integers(0, 256, size=self.message_bytes)
            .astype(np.uint8)
            .tobytes()
            for i in range(self.num_messages)
        ]

    def to_dict(self) -> dict:
        """Lossless JSON-able spec; :meth:`from_dict` inverts it."""
        return {
            "num_messages": int(self.num_messages),
            "message_bytes": int(self.message_bytes),
            "seed": int(self.seed),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MessageTrafficSpec":
        """Rebuild and validate a traffic spec from :meth:`to_dict` output."""
        if not isinstance(data, dict):
            raise SessionError(f"traffic: must be a mapping, got {type(data).__name__}")
        known = {"num_messages", "message_bytes", "seed"}
        unknown = set(data) - known
        if unknown:
            raise SessionError(f"traffic: unknown field(s): {sorted(unknown)}")
        kwargs = {k: data[k] for k in known if k in data}
        return cls(**kwargs)


@dataclass(frozen=True)
class SessionSpec:
    """A complete, serializable seed-synchronized session.

    Attributes
    ----------
    name:
        Identifier used in reports, file names and cache keys.
    config:
        The BHSS link configuration; ``config.payload_bytes`` is the
        session MTU and ``config.seed`` the pre-shared rendezvous seed.
    traffic:
        The deterministic message workload
        (:class:`MessageTrafficSpec`).
    jammer:
        Registry spec of the attacker (``{"type": "follower", ...}``).
    seed_generator:
        Registry spec of the shared hop-seed stream
        (:mod:`repro.protocol.hopseed`).
    snr_db, sjr_db:
        Operating-point grid; the session runs once per point.
    seed:
        Run seed: medium noise, handshake substreams, whitening key.
    packets_per_epoch:
        Data packets per hop-seed epoch.
    crc_fail_threshold:
        Consecutive-CRC-failure desync watchdog threshold.
    min_epoch_utilization:
        Hop-utilization watchdog: an epoch delivering a smaller accepted
        fraction than this is declared desynced.
    resync_retries:
        Re-sync rounds before degrading to the static widest band
        (``None`` = the ``REPRO_SYNC_RETRIES`` knob, default 3).
    sync_timeout:
        Handshake attempts per re-sync round (``None`` = the
        ``REPRO_SYNC_TIMEOUT`` knob, default 4).
    backoff_base:
        Idle slots before re-sync round ``r`` are
        ``backoff_base << r`` (deterministic exponential backoff).
    max_slots:
        Overall slot budget; 0 sizes it automatically from the traffic.
    description:
        Free-text note carried through the JSON file.
    """

    name: str
    config: BHSSConfig = field(default_factory=BHSSConfig.paper_default)
    traffic: MessageTrafficSpec = field(default_factory=MessageTrafficSpec)
    jammer: dict = field(default_factory=lambda: {"type": "none"})
    seed_generator: dict = field(default_factory=lambda: {"type": "counter", "key": 0})
    snr_db: tuple[float, ...] = (15.0,)
    sjr_db: tuple[float, ...] = (-10.0,)
    seed: int = 0
    packets_per_epoch: int = 8
    crc_fail_threshold: int = 4
    min_epoch_utilization: float = 0.25
    resync_retries: int | None = None
    sync_timeout: int | None = None
    backoff_base: int = 2
    max_slots: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise SessionError("name: must be a non-empty string")
        if not isinstance(self.config, BHSSConfig):
            raise SessionError("config: must be a BHSSConfig (use from_dict for specs)")
        if not isinstance(self.traffic, MessageTrafficSpec):
            raise SessionError("traffic: must be a MessageTrafficSpec")
        if not isinstance(self.jammer, dict):
            raise SessionError("jammer: must be a registry spec mapping")
        if not isinstance(self.seed_generator, dict):
            raise SessionError("seed_generator: must be a registry spec mapping")
        object.__setattr__(self, "snr_db", _grid_values(self.snr_db, "grid.snr_db"))
        object.__setattr__(self, "sjr_db", _grid_values(self.sjr_db, "grid.sjr_db"))
        _require_int(self.seed, "seed")
        _require_int(self.packets_per_epoch, "packets_per_epoch", minimum=1)
        _require_int(self.crc_fail_threshold, "crc_fail_threshold", minimum=1)
        utilization = _require_number(self.min_epoch_utilization, "min_epoch_utilization")
        if not 0.0 <= utilization <= 1.0:
            raise SessionError(
                f"min_epoch_utilization: must be in [0, 1], got {utilization!r}"
            )
        object.__setattr__(self, "min_epoch_utilization", utilization)
        retries = self.resync_retries
        object.__setattr__(
            self,
            "resync_retries",
            default_sync_retries() if retries is None
            else _require_int(retries, "resync_retries", minimum=1),
        )
        timeout = self.sync_timeout
        object.__setattr__(
            self,
            "sync_timeout",
            default_sync_timeout() if timeout is None
            else _require_int(timeout, "sync_timeout", minimum=1),
        )
        _require_int(self.backoff_base, "backoff_base", minimum=1)
        _require_int(self.max_slots, "max_slots", minimum=0)
        if not isinstance(self.description, str):
            raise SessionError("description: must be a string")
        mtu = self.config.payload_bytes
        minimum_mtu = max(MIN_MTU, HEADER_BYTES + HANDSHAKE_CHUNK_BYTES)
        if mtu < minimum_mtu:
            raise SessionError(
                f"config.payload_bytes: session MTU must be >= {minimum_mtu} bytes "
                f"(5-byte fragment header + {HANDSHAKE_CHUNK_BYTES}-byte handshake), got {mtu}"
            )

    # -- construction ---------------------------------------------------------

    def validate(self) -> "SessionSpec":
        """Deep-check the component specs (builds them once); returns self."""
        try:
            jammer_from_spec(self.jammer, sample_rate=self.config.sample_rate)
        except ValueError as exc:
            raise SessionError(f"jammer: {exc}") from None
        try:
            seed_generator_from_spec(self.seed_generator)
        except ValueError as exc:
            raise SessionError(f"seed_generator: {exc}") from None
        return self

    def points(self) -> list[tuple[float, float]]:
        """The (snr_db, sjr_db) grid points, SNR-major order."""
        return [(snr, sjr) for snr in self.snr_db for sjr in self.sjr_db]

    def slot_budget(self) -> int:
        """The effective slot budget (auto-sized when ``max_slots`` is 0).

        The automatic budget gives every fragment several transmission
        opportunities plus headroom for handshakes and backoff, so a
        benign session always finishes well inside it.
        """
        if self.max_slots:
            return self.max_slots
        fragments = self.num_fragments()
        return 8 * fragments + 24 * int(self.resync_retries or 1) + 64

    def num_fragments(self) -> int:
        """Total DATA fragments the traffic splits into at this MTU."""
        capacity = self.config.payload_bytes - HEADER_BYTES
        body = self.traffic.message_bytes + 4
        per_message = max(1, -(-body // capacity))
        return per_message * self.traffic.num_messages

    def run(
        self,
        executor: "ParallelExecutor | None" = None,
        cache: "ResultCache | str | bool | None" = None,
    ) -> "SweepResult":
        """Evaluate the grid; see :func:`repro.protocol.runner.run_session`."""
        from repro.protocol.runner import run_session

        return run_session(self, executor=executor, cache=cache)

    def with_overrides(self, **changes: Any) -> "SessionSpec":
        """A copy with dataclass fields replaced (validation re-runs)."""
        return replace(self, **changes)

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """Lossless JSON-able spec; :meth:`from_dict` inverts it."""
        out: dict = {
            "name": self.name,
            "config": self.config.to_dict(),
            "traffic": self.traffic.to_dict(),
            "jammer": self.jammer,
            "seed_generator": self.seed_generator,
            "grid": {"snr_db": list(self.snr_db), "sjr_db": list(self.sjr_db)},
            "seed": int(self.seed),
            "packets_per_epoch": int(self.packets_per_epoch),
            "crc_fail_threshold": int(self.crc_fail_threshold),
            "min_epoch_utilization": float(self.min_epoch_utilization),
            "resync_retries": int(self.resync_retries or 0),
            "sync_timeout": int(self.sync_timeout or 0),
            "backoff_base": int(self.backoff_base),
            "max_slots": int(self.max_slots),
        }
        if self.description:
            out["description"] = self.description
        return out

    @classmethod
    def from_dict(cls, data: dict, source: str | None = None) -> "SessionSpec":
        """Rebuild and validate a session spec from :meth:`to_dict` output.

        ``source`` (e.g. a file path) prefixes error messages.  Component
        specs are deep-validated so a bad field fails here, not mid-run.
        """
        prefix = f"{source}: " if source else ""
        try:
            if not isinstance(data, dict):
                raise SessionError(f"session spec must be a mapping, got {type(data).__name__}")
            known = {
                "name", "description", "config", "traffic", "jammer", "seed_generator",
                "grid", "seed", "packets_per_epoch", "crc_fail_threshold",
                "min_epoch_utilization", "resync_retries", "sync_timeout",
                "backoff_base", "max_slots",
            }
            unknown = set(data) - known
            if unknown:
                raise SessionError(f"unknown session field(s): {sorted(unknown)}")
            if "name" not in data:
                raise SessionError("name: field is required")
            grid = data.get("grid", {})
            if not isinstance(grid, dict):
                raise SessionError("grid: must be a mapping with snr_db/sjr_db lists")
            grid_unknown = set(grid) - {"snr_db", "sjr_db"}
            if grid_unknown:
                raise SessionError(f"unknown grid field(s): {sorted(grid_unknown)}")
            try:
                config = BHSSConfig.from_dict(data.get("config", {}))
            except ValueError as exc:
                raise SessionError(f"config: {exc}") from None
            traffic = MessageTrafficSpec.from_dict(data.get("traffic", {}))
            description = data.get("description", "")
            kwargs: dict = {
                "name": data["name"],
                "config": config,
                "traffic": traffic,
                "jammer": data.get("jammer", {"type": "none"}),
                "seed_generator": data.get("seed_generator", {"type": "counter", "key": 0}),
                "description": description,
            }
            if "snr_db" in grid:
                kwargs["snr_db"] = grid["snr_db"]
            if "sjr_db" in grid:
                kwargs["sjr_db"] = grid["sjr_db"]
            for key in (
                "seed", "packets_per_epoch", "crc_fail_threshold",
                "min_epoch_utilization", "resync_retries", "sync_timeout",
                "backoff_base", "max_slots",
            ):
                if key in data:
                    kwargs[key] = data[key]
            return cls(**kwargs).validate()
        except SessionError as exc:
            if prefix:
                raise SessionError(f"{prefix}{exc}") from None
            raise

    def save(self, path: str) -> str:
        """Write the session spec as pretty-printed JSON; returns the path."""
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "SessionSpec":
        """Read and validate a session JSON file."""
        try:
            with open(path) as fh:
                data = json.load(fh)
        except OSError as exc:
            raise SessionError(f"{path}: cannot read session file ({exc})") from None
        except ValueError as exc:
            raise SessionError(f"{path}: invalid JSON ({exc})") from None
        return cls.from_dict(data, source=path)
