"""Preamble correlation: frame detection and coarse synchronization.

The paper's frame (Section 6.1) starts with a preamble and a start-of-frame
delimiter (SFD) used for "frame, frequency, time, and phase
synchronization".  This module provides the matched correlator: slide a
known reference waveform over the received samples, normalize, detect the
peak, and optionally estimate the carrier-frequency offset from the phase
slope across the correlation segments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import as_complex_array

__all__ = [
    "correlate_preamble",
    "PreambleDetection",
    "detect_preamble",
    "detect_preamble_noncoherent",
    "estimate_cfo_from_preamble",
]


def correlate_preamble(received: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Normalized cross-correlation magnitude of ``reference`` against ``received``.

    Output index ``k`` corresponds to the reference starting at received
    sample ``k``; values are in [0, 1] (1 = perfect match).  Computed with
    FFTs so long searches stay fast.
    """
    x = as_complex_array(received, "received")
    ref = as_complex_array(reference, "reference")
    if ref.size == 0:
        raise ValueError("reference must be non-empty")
    if x.size < ref.size:
        return np.zeros(0)

    n_out = x.size - ref.size + 1
    nfft = 1 << int(np.ceil(np.log2(x.size + ref.size)))
    # cross-correlation = conv(x, conj(reversed ref))
    corr = np.fft.ifft(np.fft.fft(x, nfft) * np.fft.fft(np.conj(ref[::-1]), nfft))
    corr = corr[ref.size - 1 : ref.size - 1 + n_out]

    # normalize by local received energy and reference energy
    ref_energy = np.sum(np.abs(ref) ** 2)
    power = np.abs(x) ** 2
    window = np.concatenate([[0.0], np.cumsum(power)])
    local_energy = window[ref.size :] - window[: n_out]
    # Floor the local energy at a tiny fraction of the reference energy so
    # near-silent stretches yield near-zero correlation instead of 0/0.
    floored = np.maximum(local_energy, 1e-12 * ref_energy)
    denom = np.sqrt(floored * ref_energy)
    return np.abs(corr) / denom


@dataclass(frozen=True)
class PreambleDetection:
    """Result of a preamble search."""

    #: sample index where the preamble starts (None if not found)
    start: int | None
    #: normalized correlation peak value in [0, 1]
    peak: float
    #: full correlation magnitude trace (diagnostic)
    correlation: np.ndarray

    @property
    def found(self) -> bool:
        """Whether the peak cleared the detection threshold."""
        return self.start is not None


def detect_preamble(received: np.ndarray, reference: np.ndarray, threshold: float = 0.5) -> PreambleDetection:
    """Find the start of ``reference`` inside ``received``.

    ``threshold`` is on the normalized correlation (0-1).  Returns the
    index of the *highest* peak above threshold, which makes the detector
    robust to a jammer raising the noise correlation floor.
    """
    if not 0 < threshold <= 1:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    corr = correlate_preamble(received, reference)
    if corr.size == 0:
        return PreambleDetection(start=None, peak=0.0, correlation=corr)
    best = int(np.argmax(corr))
    peak = float(corr[best])
    if peak < threshold:
        return PreambleDetection(start=None, peak=peak, correlation=corr)
    return PreambleDetection(start=best, peak=peak, correlation=corr)


def detect_preamble_noncoherent(
    received: np.ndarray,
    reference: np.ndarray,
    threshold: float = 0.5,
    num_segments: int = 8,
) -> PreambleDetection:
    """CFO-tolerant preamble search via segmented correlation.

    A carrier-frequency offset rotates the phase across a long coherent
    correlation and collapses its peak; splitting the reference into
    segments, correlating each coherently, and summing the *magnitudes*
    keeps the peak as long as the rotation stays small within one segment
    (tolerates offsets up to roughly ``sample_rate / (4 * segment_len)``).
    """
    if not 0 < threshold <= 1:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    if num_segments < 1:
        raise ValueError(f"num_segments must be >= 1, got {num_segments}")
    x = as_complex_array(received, "received")
    ref = as_complex_array(reference, "reference")
    if ref.size == 0:
        raise ValueError("reference must be non-empty")
    seg_len = ref.size // num_segments
    if seg_len < 4:
        return detect_preamble(received, reference, threshold)
    n_out = x.size - ref.size + 1
    if n_out < 1:
        return PreambleDetection(start=None, peak=0.0, correlation=np.zeros(0))

    total = np.zeros(n_out)
    for m in range(num_segments):
        offset = m * seg_len
        corr = correlate_preamble(x, ref[offset : offset + seg_len])
        # segment m aligned to frame start k sits at received index k+offset
        total += corr[offset : offset + n_out]
    total /= num_segments
    best = int(np.argmax(total))
    peak = float(total[best])
    if peak < threshold:
        return PreambleDetection(start=None, peak=peak, correlation=total)
    return PreambleDetection(start=best, peak=peak, correlation=total)


def estimate_cfo_from_preamble(
    received_preamble: np.ndarray,
    reference: np.ndarray,
    sample_rate: float,
    num_segments: int = 8,
) -> float:
    """Estimate carrier-frequency offset from the preamble, in Hz.

    Splits the aligned preamble into segments, computes the matched
    correlation phase of each, and fits the phase slope across segment
    centres: a CFO of ``df`` rotates the correlation phase by
    ``2*pi*df*T_seg`` per segment.  Unambiguous for offsets below
    ``sample_rate / (2 * segment_length)``.
    """
    x = as_complex_array(received_preamble, "received_preamble")
    ref = as_complex_array(reference, "reference")
    if x.size < ref.size:
        raise ValueError("received_preamble shorter than reference")
    if num_segments < 2:
        raise ValueError(f"num_segments must be >= 2, got {num_segments}")
    seg_len = ref.size // num_segments
    if seg_len < 1:
        raise ValueError("reference too short for the requested number of segments")

    phases = []
    for s in range(num_segments):
        sl = slice(s * seg_len, (s + 1) * seg_len)
        corr = np.vdot(ref[sl], x[sl])  # sum(conj(ref) * x)
        phases.append(np.angle(corr))
    unwrapped = np.unwrap(np.array(phases))
    # least-squares slope of phase vs segment index
    idx = np.arange(num_segments)
    slope = np.polyfit(idx, unwrapped, 1)[0]  # radians per segment
    return float(slope / (2 * np.pi * seg_len) * sample_rate)
