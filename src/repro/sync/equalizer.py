"""Training-based channel estimation and MMSE equalization (extension).

The paper's coax testbed is frequency-flat, so its receiver needs no
equalizer.  Over the multipath extension channel
(:class:`repro.channel.MultipathChannel`) the wide BHSS hops become
frequency-selective; this module provides the classic remedy:

1. :func:`estimate_channel` — least-squares FIR channel estimate from a
   known training sequence (the frame preamble serves naturally);
2. :func:`mmse_equalizer_taps` — a frequency-domain MMSE inverse,
   regularized by the noise level so deep channel notches do not explode
   the noise (the zero-forcing special case falls out at zero noise);
3. :func:`equalize` — delay-compensated application.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.fir import apply_fir
from repro.utils.validation import as_complex_array, ensure_non_negative

__all__ = ["estimate_channel", "mmse_equalizer_taps", "equalize"]


def estimate_channel(received: np.ndarray, training: np.ndarray, num_taps: int) -> np.ndarray:
    """Least-squares FIR channel estimate.

    Solves ``received ~= conv(training, h)`` for ``h`` of length
    ``num_taps`` in the least-squares sense.  ``received`` must be the
    segment aligned with ``training`` (same starting sample); at least
    ``num_taps`` extra received samples beyond the training length are
    ignored if present.
    """
    y = as_complex_array(received, "received")
    x = as_complex_array(training, "training")
    if num_taps < 1:
        raise ValueError(f"num_taps must be >= 1, got {num_taps}")
    if x.size < 2 * num_taps:
        raise ValueError(
            f"training too short: need >= {2 * num_taps} samples, got {x.size}"
        )
    n = min(y.size, x.size)
    if n < x.size:
        raise ValueError("received segment shorter than the training sequence")
    # Build the convolution (Toeplitz) matrix rows for the steady-state
    # region [num_taps-1, n) so edge transients don't bias the estimate.
    rows = n - (num_taps - 1)
    conv = np.empty((rows, num_taps), dtype=complex)
    for k in range(num_taps):
        conv[:, k] = x[num_taps - 1 - k : n - k]
    target = y[num_taps - 1 : n]
    h, *_ = np.linalg.lstsq(conv, target, rcond=None)
    return h


def mmse_equalizer_taps(
    channel: np.ndarray, num_taps: int = 64, noise_power: float = 0.0
) -> np.ndarray:
    """Frequency-domain MMSE equalizer for an FIR channel.

    ``W(f) = H*(f) / (|H(f)|^2 + noise_power)`` sampled on ``num_taps``
    bins, returned as a causal FIR centred at ``(num_taps-1)/2`` (apply
    with delay compensation).  ``noise_power`` is the noise-to-signal
    power ratio at the equalizer input; 0 gives zero forcing.
    """
    h = as_complex_array(channel, "channel")
    if h.size == 0:
        raise ValueError("empty channel")
    if num_taps < max(8, h.size):
        raise ValueError(f"num_taps must be >= max(8, channel length), got {num_taps}")
    ensure_non_negative(noise_power, "noise_power")
    h_freq = np.fft.fft(h, num_taps)
    denom = np.abs(h_freq) ** 2 + noise_power
    floor = 1e-9 * float(np.max(denom))
    w_freq = np.conj(h_freq) / np.maximum(denom, floor)
    # integer linear-phase delay, matching apply_fir's (K-1)//2 group-
    # delay compensation exactly (a fractional delay would notch Nyquist)
    delay = (num_taps - 1) // 2
    k = np.arange(num_taps)
    w_freq = w_freq * np.exp(-2j * np.pi * delay * k / num_taps)
    return np.fft.ifft(w_freq)


def equalize(received: np.ndarray, equalizer_taps: np.ndarray) -> np.ndarray:
    """Apply an equalizer with group-delay compensation."""
    return apply_fir(received, equalizer_taps, mode="compensated")
