"""Gardner timing-error detector and symbol-timing recovery.

The paper's receiver achieves timing synchronization with the Gardner
detector (Section 6.1, ref. [23]): at two samples per symbol the error

    e[k] = Re{ (y[k] - y[k-1]) * conj(y[k - 1/2]) }

is zero when the mid-symbol sample sits exactly between symbol peaks, and
its sign indicates whether sampling is early or late.  A second-order loop
drives an interpolating sampler.  Decision-independent, so it works on the
spread (chip-rate) signal before despreading.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.resample import linear_interpolate
from repro.utils.validation import as_complex_array, ensure_in_range, ensure_positive

__all__ = ["GardnerTimingRecovery", "TimingResult", "gardner_error"]


def gardner_error(prev_symbol: complex, mid_sample: complex, current_symbol: complex) -> float:
    """Gardner timing error for one symbol (complex, decision-free form)."""
    return float(np.real((current_symbol - prev_symbol) * np.conj(mid_sample)))


@dataclass
class TimingResult:
    """Output of a timing-recovery run.

    Attributes
    ----------
    symbols:
        Interpolated samples at the recovered symbol instants.
    positions:
        Fractional sample positions (in input-sample units) where each
        output symbol was taken — useful for verifying convergence.
    errors:
        Raw Gardner error sequence (diagnostic).
    """

    symbols: np.ndarray
    positions: np.ndarray
    errors: np.ndarray


@dataclass
class GardnerTimingRecovery:
    """Second-order Gardner timing loop over a 2-samples/symbol signal.

    Parameters
    ----------
    sps:
        Input samples per symbol.  The classic detector wants 2; any even
        integer >= 2 works (intermediate samples are simply skipped).
    loop_bandwidth:
        Normalized loop bandwidth (cycles/symbol).  0.01-0.05 typical.
    damping:
        Loop damping factor.
    """

    sps: int = 2
    loop_bandwidth: float = 0.02
    damping: float = float(np.sqrt(2) / 2)

    def __post_init__(self) -> None:
        if self.sps < 2:
            raise ValueError(f"sps must be >= 2 for the Gardner detector, got {self.sps}")
        ensure_positive(self.loop_bandwidth, "loop_bandwidth")
        ensure_in_range(self.loop_bandwidth, 1e-6, 0.5, "loop_bandwidth")
        ensure_positive(self.damping, "damping")
        denom = 1.0 + 2.0 * self.damping * self.loop_bandwidth + self.loop_bandwidth**2
        self._alpha = (4.0 * self.damping * self.loop_bandwidth) / denom
        self._beta = (4.0 * self.loop_bandwidth**2) / denom

    def process(self, samples: np.ndarray, initial_offset: float = 0.0) -> TimingResult:
        """Recover symbol timing over a block.

        ``initial_offset`` seeds the sampling phase in input samples
        (e.g. from a coarse preamble estimate).
        """
        x = as_complex_array(samples)
        sps = float(self.sps)
        half = sps / 2.0

        # normalize amplitude so loop gain is power-independent
        scale = np.sqrt(np.mean(np.abs(x) ** 2)) if x.size else 1.0
        if scale <= 0:
            scale = 1.0

        symbols: list[complex] = []
        positions: list[float] = []
        errors: list[float] = []

        freq = 0.0  # timing-rate correction (samples/symbol deviation)
        pos = float(initial_offset) + sps  # leave room for the look-back taps
        prev = None
        while pos < x.size - 1:
            current = complex(linear_interpolate(x, np.array([pos]))[0]) / scale
            mid = complex(linear_interpolate(x, np.array([pos - half]))[0]) / scale
            if prev is not None:
                err = gardner_error(prev, mid, current)
                # clamp the error so noise bursts cannot slam the loop
                err = float(np.clip(err, -1.0, 1.0))
                # positive error means sampling late -> retard the clock
                freq -= self._beta * err
                freq = float(np.clip(freq, -0.1 * sps, 0.1 * sps))
                pos -= self._alpha * err
                errors.append(err)
            symbols.append(current * scale)
            positions.append(pos)
            prev = current
            pos += sps + freq
        return TimingResult(
            symbols=np.array(symbols, dtype=np.complex128),
            positions=np.array(positions),
            errors=np.array(errors),
        )
