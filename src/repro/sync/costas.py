"""Costas loop for QPSK carrier phase/frequency recovery.

The paper's receiver corrects frequency and phase *after* the interference
suppression filter with a Costas loop (Section 6.1), so that the jammer
cannot disturb the error detector and the filter gain is fully exploited.
This is the standard second-order decision-directed loop used by GNU
Radio's ``costas_loop_cc`` block for order 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import as_complex_array, ensure_in_range, ensure_positive

__all__ = ["CostasLoop", "CostasResult"]


@dataclass
class CostasResult:
    """Output of a Costas loop run.

    Attributes
    ----------
    corrected:
        Input samples de-rotated by the tracked phase.
    phase:
        Per-sample phase estimate (radians) that was removed.
    frequency:
        Per-sample frequency estimate (radians/sample) of the loop's
        integrator — converges to the true carrier offset.
    """

    corrected: np.ndarray
    phase: np.ndarray
    frequency: np.ndarray

    @property
    def final_frequency(self) -> float:
        """Converged frequency estimate in radians/sample."""
        return float(self.frequency[-1]) if self.frequency.size else 0.0


@dataclass
class CostasLoop:
    """Second-order QPSK Costas loop.

    Parameters
    ----------
    loop_bandwidth:
        Normalized loop bandwidth in cycles/sample (relative to the symbol
        rate of the samples being processed).  Typical values: 0.01-0.1.
        Larger pulls in faster but with more phase jitter.
    damping:
        Loop damping factor; the critically damped sqrt(2)/2 default is the
        GNU Radio convention.

    The loop is stateful: :meth:`process` can be called repeatedly on
    consecutive blocks and tracking continues across calls (the receiver
    processes one hop segment at a time).
    """

    loop_bandwidth: float = 0.05
    damping: float = float(np.sqrt(2) / 2)
    _phase: float = field(default=0.0, repr=False)
    _freq: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        ensure_positive(self.loop_bandwidth, "loop_bandwidth")
        ensure_in_range(self.loop_bandwidth, 1e-6, 0.5, "loop_bandwidth")
        ensure_positive(self.damping, "damping")
        # Standard loop-gain mapping (e.g. Rice, "Digital Communications:
        # A Discrete-Time Approach", also used by GNU Radio):
        denom = 1.0 + 2.0 * self.damping * self.loop_bandwidth + self.loop_bandwidth**2
        self._alpha = (4.0 * self.damping * self.loop_bandwidth) / denom
        self._beta = (4.0 * self.loop_bandwidth**2) / denom

    @staticmethod
    def _phase_error(sample: complex) -> float:
        """QPSK decision-directed phase detector.

        For a constellation point rotated by ``theta`` the detector output
        is approximately proportional to ``theta`` for small errors; the
        hard decisions make it invariant to the 4-fold symbol ambiguity.
        """
        return float(
            np.sign(sample.real) * sample.imag - np.sign(sample.imag) * sample.real
        )

    def reset(self) -> None:
        """Forget all tracking state (phase and frequency)."""
        self._phase = 0.0
        self._freq = 0.0

    def process(self, samples: np.ndarray) -> CostasResult:
        """Track and remove carrier phase/frequency from ``samples``.

        ``samples`` should be at (or near) one sample per symbol/chip with
        the QPSK constellation nominally at 45/135/225/315 degrees.
        """
        x = as_complex_array(samples)
        n = x.size
        corrected = np.empty(n, dtype=np.complex128)
        phases = np.empty(n)
        freqs = np.empty(n)
        phase = self._phase
        freq = self._freq
        # The per-sample feedback loop is inherently sequential; a Python
        # loop over the block is the honest implementation (same structure
        # as the GNU Radio C++ block).
        for i in range(n):
            out = x[i] * np.exp(-1j * phase)
            corrected[i] = out
            err = self._phase_error(out)
            # normalize the error by the signal magnitude to decouple the
            # loop gain from the received power
            mag2 = out.real**2 + out.imag**2
            if mag2 > 0:
                err /= np.sqrt(mag2)
            freq += self._beta * err
            phase += freq + self._alpha * err
            # keep phase bounded for numerical hygiene on long runs
            if phase > np.pi:
                phase -= 2 * np.pi
            elif phase < -np.pi:
                phase += 2 * np.pi
            phases[i] = phase
            freqs[i] = freq
        self._phase = phase
        self._freq = freq
        return CostasResult(corrected=corrected, phase=phases, frequency=freqs)
