"""Receiver synchronization substrate: Costas loop (carrier), Gardner
timing recovery (clock), and preamble correlation (frame)."""

from repro.sync.costas import CostasLoop, CostasResult
from repro.sync.gardner import GardnerTimingRecovery, TimingResult, gardner_error
from repro.sync.equalizer import equalize, estimate_channel, mmse_equalizer_taps
from repro.sync.preamble import (
    PreambleDetection,
    correlate_preamble,
    detect_preamble,
    detect_preamble_noncoherent,
    estimate_cfo_from_preamble,
)

__all__ = [
    "CostasLoop",
    "CostasResult",
    "GardnerTimingRecovery",
    "TimingResult",
    "gardner_error",
    "correlate_preamble",
    "detect_preamble_noncoherent",
    "detect_preamble",
    "PreambleDetection",
    "estimate_cfo_from_preamble",
    "estimate_channel",
    "mmse_equalizer_taps",
    "equalize",
]
