"""Declarative scenarios: a whole evaluation as serializable data.

Every evaluation in the paper is a *scenario* — a BHSS configuration, an
attacker, a channel, and an operating-point grid.  This package makes that
a first-class, JSON-serializable object so every layer consumes the same
description:

``Scenario``
    The spec itself: config + jammer spec + channel/impairment specs +
    (SNR x SJR) grid + packet/seed budget.  ``load``/``save`` round-trip
    JSON files with validation errors that name the bad field;
    ``build()`` returns a ready :class:`~repro.core.link.LinkSimulator`
    and :class:`~repro.jamming.base.Jammer`.
``run_scenario``
    Evaluates the grid into a tidy
    :class:`~repro.analysis.sweep.SweepResult`, fanning points out over
    the ``REPRO_WORKERS`` pool through the spec-based transport — workers
    rebuild the link and jammer from the spec, so nothing is shipped
    through fork-inherited closures.

New jammers, channels, or operating points become a data change, not a
code change: drop a JSON file and ``repro-bhss run --scenario file.json``.
"""

from repro.scenario.spec import Scenario, ScenarioError
from repro.scenario.runner import SCENARIO_COLUMNS, evaluate_scenario_point, run_scenario

__all__ = [
    "Scenario",
    "ScenarioError",
    "run_scenario",
    "evaluate_scenario_point",
    "SCENARIO_COLUMNS",
]
