"""Spec-driven scenario execution.

:func:`run_scenario` evaluates a :class:`~repro.scenario.spec.Scenario`'s
operating-point grid into a tidy
:class:`~repro.analysis.sweep.SweepResult`.  The fan-out goes through the
executor's spec transport: the only things shipped to workers are the
scenario's ``to_dict()`` payload and ``(snr_db, sjr_db)`` tuples, and each
worker rebuilds its link and jammer from the spec.  Because every grid
point gets a *fresh* link and jammer, even stateful jammers (hoppers,
sweepers) are order-free at the sweep level, and a parallel run is
bit-identical to a serial one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.runtime import (
    ParallelExecutor,
    ResultCache,
    SweepCheckpoint,
    SweepTiming,
    make_checkpoint,
    resolve_batch,
    stable_hash,
)

if TYPE_CHECKING:
    from repro.analysis.sweep import SweepResult
    from repro.scenario.spec import Scenario

__all__ = ["SCENARIO_COLUMNS", "evaluate_scenario_point", "run_scenario"]

#: column order of every scenario sweep result.
SCENARIO_COLUMNS = ("snr_db", "sjr_db", "per", "per_lo", "per_hi", "ber", "throughput_bps")


def _cache_token(cache: "ResultCache | str | bool | None") -> "str | bool | None":
    """Flatten a cache argument to picklable data for the spec payload."""
    if cache is None or cache is False:
        return cache
    if isinstance(cache, ResultCache):
        return cache.root
    return str(cache)


def evaluate_scenario_point(payload: dict, point: tuple) -> dict:
    """Evaluate one ``(snr_db, sjr_db)`` grid point of a scenario.

    This is the module-level runner of the spec transport: ``payload`` is
    plain data — ``{"scenario": Scenario.to_dict(), "cache": None | False
    | <root path>}`` — and the link and jammer are rebuilt from it, so the
    call is a pure function of its arguments with no fork-inherited state.
    """
    from repro.backend import use_backend
    from repro.scenario.spec import Scenario

    scenario = Scenario.from_dict(payload["scenario"])
    token = payload.get("cache")
    cache = ResultCache(token) if isinstance(token, str) else token
    link, jammer = scenario.build()
    snr_db, sjr_db = point
    # The vectorized path is bit-identical to the serial one per seed, so
    # scenarios always go through it; REPRO_BATCH=0 selects serial, and
    # run_packets_batched itself falls back for phase-tracking links.
    # The scenario's pinned backend (if any) rides in the spec payload, so
    # pool workers apply the same selection as a serial run would.
    with use_backend(scenario.backend):
        stats = link.run_packets_batched(
            scenario.packets,
            snr_db=float(snr_db),
            sjr_db=float(sjr_db),
            jammer=jammer,
            seed=scenario.seed,
            cache=cache,
        )
    per_lo, per_hi = stats.per_confidence_interval()
    return {
        "snr_db": float(snr_db),
        "sjr_db": float(sjr_db),
        "per": stats.packet_error_rate,
        "per_lo": per_lo,
        "per_hi": per_hi,
        "ber": stats.bit_error_rate,
        "throughput_bps": stats.throughput_bps,
    }


def run_scenario(
    scenario: "Scenario",
    *,
    executor: ParallelExecutor | None = None,
    cache: "ResultCache | str | bool | None" = None,
    checkpoint: "SweepCheckpoint | str | bool | None" = None,
) -> "SweepResult":
    """Evaluate a scenario's grid into a :class:`SweepResult`.

    ``executor`` defaults to the ``REPRO_WORKERS``-configured pool (serial
    when unset); grid points are merged in grid order either way.
    ``cache`` follows the :meth:`LinkSimulator.run_packets` convention:
    ``None`` defers to ``REPRO_CACHE``, ``False`` forces caching off, and
    a :class:`ResultCache` (or directory path) enables that store — cache
    keys derive from the scenario's own specs, so identical scenario JSON
    hits the same entries from any process.

    ``checkpoint`` enables crash-safe resume: ``None`` defers to
    ``REPRO_CHECKPOINT``, ``False`` forces it off, a string (or ``True``)
    selects the checkpoint directory.  Completed grid points are
    persisted incrementally under the scenario's canonical spec hash; a
    rerun of the *same* scenario recomputes only unfinished points and —
    because records round-trip through JSON bit-exactly — produces a
    result bit-identical to an uninterrupted run.  The checkpoint file is
    removed once the sweep completes.
    """
    from repro.analysis.sweep import SweepResult

    ex = executor if executor is not None else ParallelExecutor.from_env()
    spec_dict = scenario.to_dict()
    payload = {"scenario": spec_dict, "cache": _cache_token(cache)}
    points = list(scenario.points())
    total = len(points)
    ckpt = make_checkpoint(checkpoint, stable_hash(spec_dict), total)
    loaded: dict[int, Any] = {} if ckpt is None else ckpt.load()
    pending = [i for i in range(total) if not isinstance(loaded.get(i), dict)]
    records: list[dict[str, float] | None] = [
        loaded[i] if i not in pending else None for i in range(total)
    ]
    seconds = [0.0] * total
    wall = 0.0
    workers = 1
    retries = 0
    if pending:
        on_result: Callable[[int, object], None] | None = None
        if ckpt is not None:
            active = ckpt

            def _persist(local_index: int, value: object) -> None:
                active.record(pending[local_index], value)

            on_result = _persist
        try:
            report = ex.map_spec(
                evaluate_scenario_point,
                payload,
                [points[i] for i in pending],
                on_result=on_result,
            )
        except BaseException:
            # Keep whatever finished: an interrupted sweep resumes from here.
            if ckpt is not None:
                ckpt.flush()
            raise
        for index, value, secs in zip(pending, report.values, report.seconds):
            records[index] = value
            seconds[index] = secs
        wall = report.wall_seconds
        workers = report.workers
        retries = report.retries
    if ckpt is not None:
        ckpt.complete()
    result = SweepResult(columns=SCENARIO_COLUMNS)
    for record in records:
        assert record is not None  # every index is either loaded or pending
        result.add(**record)
    result.timing = SweepTiming(
        wall_seconds=wall,
        point_seconds=tuple(seconds),
        workers=workers,
        packets=scenario.packets * total,
        batch_size=resolve_batch(),
        retries=retries,
    )
    return result
