"""Spec-driven scenario execution.

:func:`run_scenario` evaluates a :class:`~repro.scenario.spec.Scenario`'s
operating-point grid into a tidy
:class:`~repro.analysis.sweep.SweepResult`.  The fan-out goes through the
executor's spec transport: the only things shipped to workers are the
scenario's ``to_dict()`` payload and ``(snr_db, sjr_db)`` tuples, and each
worker rebuilds its link and jammer from the spec.  Because every grid
point gets a *fresh* link and jammer, even stateful jammers (hoppers,
sweepers) are order-free at the sweep level, and a parallel run is
bit-identical to a serial one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.runtime import ParallelExecutor, ResultCache, SweepTiming, resolve_batch

if TYPE_CHECKING:
    from repro.analysis.sweep import SweepResult
    from repro.scenario.spec import Scenario

__all__ = ["SCENARIO_COLUMNS", "evaluate_scenario_point", "run_scenario"]

#: column order of every scenario sweep result.
SCENARIO_COLUMNS = ("snr_db", "sjr_db", "per", "per_lo", "per_hi", "ber", "throughput_bps")


def _cache_token(cache: "ResultCache | str | bool | None") -> "str | bool | None":
    """Flatten a cache argument to picklable data for the spec payload."""
    if cache is None or cache is False:
        return cache
    if isinstance(cache, ResultCache):
        return cache.root
    return str(cache)


def evaluate_scenario_point(payload: dict, point: tuple) -> dict:
    """Evaluate one ``(snr_db, sjr_db)`` grid point of a scenario.

    This is the module-level runner of the spec transport: ``payload`` is
    plain data — ``{"scenario": Scenario.to_dict(), "cache": None | False
    | <root path>}`` — and the link and jammer are rebuilt from it, so the
    call is a pure function of its arguments with no fork-inherited state.
    """
    from repro.scenario.spec import Scenario

    scenario = Scenario.from_dict(payload["scenario"])
    token = payload.get("cache")
    cache = ResultCache(token) if isinstance(token, str) else token
    link, jammer = scenario.build()
    snr_db, sjr_db = point
    # The vectorized path is bit-identical to the serial one per seed, so
    # scenarios always go through it; REPRO_BATCH=0 selects serial, and
    # run_packets_batched itself falls back for phase-tracking links.
    stats = link.run_packets_batched(
        scenario.packets,
        snr_db=float(snr_db),
        sjr_db=float(sjr_db),
        jammer=jammer,
        seed=scenario.seed,
        cache=cache,
    )
    per_lo, per_hi = stats.per_confidence_interval()
    return {
        "snr_db": float(snr_db),
        "sjr_db": float(sjr_db),
        "per": stats.packet_error_rate,
        "per_lo": per_lo,
        "per_hi": per_hi,
        "ber": stats.bit_error_rate,
        "throughput_bps": stats.throughput_bps,
    }


def run_scenario(
    scenario: "Scenario",
    *,
    executor: ParallelExecutor | None = None,
    cache: "ResultCache | str | bool | None" = None,
) -> "SweepResult":
    """Evaluate a scenario's grid into a :class:`SweepResult`.

    ``executor`` defaults to the ``REPRO_WORKERS``-configured pool (serial
    when unset); grid points are merged in grid order either way.
    ``cache`` follows the :meth:`LinkSimulator.run_packets` convention:
    ``None`` defers to ``REPRO_CACHE``, ``False`` forces caching off, and
    a :class:`ResultCache` (or directory path) enables that store — cache
    keys derive from the scenario's own specs, so identical scenario JSON
    hits the same entries from any process.
    """
    from repro.analysis.sweep import SweepResult

    ex = executor if executor is not None else ParallelExecutor.from_env()
    payload = {"scenario": scenario.to_dict(), "cache": _cache_token(cache)}
    report = ex.map_spec(evaluate_scenario_point, payload, scenario.points())
    result = SweepResult(columns=SCENARIO_COLUMNS)
    for record in report.values:
        result.add(**record)
    result.timing = SweepTiming(
        wall_seconds=report.wall_seconds,
        point_seconds=report.seconds,
        workers=report.workers,
        packets=scenario.packets * len(report.values),
        batch_size=resolve_batch(),
    )
    return result
