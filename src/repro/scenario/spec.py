"""The :class:`Scenario` dataclass and its JSON round trip.

A scenario file looks like::

    {
      "name": "narrowband-noise",
      "description": "parabolic BHSS vs a 0.625 MHz noise jammer",
      "config": {"pattern": "parabolic", "seed": 42, "payload_bytes": 8},
      "jammer": {"type": "noise", "bandwidth": 625000.0},
      "channel": null,
      "impairments": null,
      "grid": {"snr_db": [15.0], "sjr_db": [0.0, -5.0, -10.0]},
      "packets": 20,
      "seed": 7
    }

``config`` fields are optional and default to the paper's system
(:meth:`BHSSConfig.from_dict`); a jammer spec may omit ``sample_rate`` and
inherit the link's.  Validation failures raise :class:`ScenarioError`
naming the offending field (``"jammer.bandwith: ..."`` style), so a typo
in a fleet of JSON files is a one-line diagnosis.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

from repro.channel.registry import channel_from_spec, impairments_from_spec
from repro.core.config import BHSSConfig
from repro.jamming.base import Jammer
from repro.jamming.registry import jammer_from_spec

if TYPE_CHECKING:
    from repro.analysis.sweep import SweepResult
    from repro.runtime import ParallelExecutor, ResultCache

__all__ = ["Scenario", "ScenarioError"]


class ScenarioError(ValueError):
    """A scenario spec failed validation; the message names the field."""


def _grid_values(values: object, path: str) -> tuple[float, ...]:
    if not isinstance(values, (list, tuple)) or not values:
        raise ScenarioError(f"{path}: must be a non-empty list of numbers")
    out = []
    for i, v in enumerate(values):
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            raise ScenarioError(f"{path}[{i}]: expected a number, got {v!r}")
        out.append(float(v))
    return tuple(out)


@dataclass(frozen=True)
class Scenario:
    """A complete, serializable evaluation scenario.

    Attributes
    ----------
    name:
        Identifier used in reports, file names and cache keys.
    config:
        The BHSS link configuration under test.
    jammer:
        Registry spec of the attacker (``{"type": "noise", ...}``; see
        :mod:`repro.jamming.registry`).  ``sample_rate`` may be omitted.
    snr_db, sjr_db:
        Operating-point grid: the scenario evaluates the cross product.
    packets:
        Packet budget per grid point.
    seed:
        Run seed for the packet batch (the *link's* pre-shared seed lives
        in ``config.seed``).
    channel:
        Optional propagation-channel spec (``{"type": "multipath", ...}``).
    impairments:
        Optional front-end impairment spec
        (:meth:`~repro.channel.impairments.Impairments.to_dict` layout).
    backend:
        Optional DSP compute backend name (see :mod:`repro.backend`).
        ``None`` (default) keeps whatever ``REPRO_BACKEND``/``--backend``
        selected; a name pins this scenario's numerics to that backend —
        pool workers rebuild the scenario from this spec, so the choice
        reaches them too.
    description:
        Free-text note carried through the JSON file.
    """

    name: str
    config: BHSSConfig = field(default_factory=BHSSConfig.paper_default)
    jammer: dict = field(default_factory=lambda: {"type": "none"})
    snr_db: tuple[float, ...] = (15.0,)
    sjr_db: tuple[float, ...] = (-10.0,)
    packets: int = 20
    seed: int = 0
    channel: dict | None = None
    impairments: dict | None = None
    backend: str | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ScenarioError("name: must be a non-empty string")
        if not isinstance(self.config, BHSSConfig):
            raise ScenarioError("config: must be a BHSSConfig (use from_dict for specs)")
        if not isinstance(self.jammer, dict):
            raise ScenarioError("jammer: must be a registry spec mapping")
        object.__setattr__(self, "snr_db", _grid_values(self.snr_db, "grid.snr_db"))
        object.__setattr__(self, "sjr_db", _grid_values(self.sjr_db, "grid.sjr_db"))
        if isinstance(self.packets, bool) or not isinstance(self.packets, int) or self.packets < 1:
            raise ScenarioError("packets: must be an integer >= 1")
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ScenarioError("seed: must be an integer")
        if self.backend is not None:
            from repro.backend import available_backends

            if not isinstance(self.backend, str) or self.backend not in available_backends():
                raise ScenarioError(
                    f"backend: unknown backend {self.backend!r}; expected one of "
                    f"{sorted(available_backends())}"
                )

    # -- construction ---------------------------------------------------------

    def build(self) -> tuple["LinkSimulator", Jammer]:
        """A ready link simulator and jammer built from the specs."""
        from repro.core.link import LinkSimulator

        try:
            jammer = jammer_from_spec(self.jammer, sample_rate=self.config.sample_rate)
        except ValueError as exc:
            raise ScenarioError(f"jammer: {exc}") from None
        try:
            channel = channel_from_spec(self.channel)
        except ValueError as exc:
            raise ScenarioError(f"channel: {exc}") from None
        try:
            impairments = impairments_from_spec(self.impairments)
        except ValueError as exc:
            raise ScenarioError(f"impairments: {exc}") from None
        link = LinkSimulator(self.config, impairments=impairments, channel=channel)
        return link, jammer

    def validate(self) -> "Scenario":
        """Deep-check the component specs (builds them once); returns self."""
        self.build()
        return self

    def points(self) -> list[tuple[float, float]]:
        """The (snr_db, sjr_db) grid points, SNR-major order."""
        return [(snr, sjr) for snr in self.snr_db for sjr in self.sjr_db]

    def run(
        self,
        executor: "ParallelExecutor | None" = None,
        cache: "ResultCache | str | bool | None" = None,
    ) -> "SweepResult":
        """Evaluate the grid; see :func:`repro.scenario.runner.run_scenario`."""
        from repro.scenario.runner import run_scenario

        return run_scenario(self, executor=executor, cache=cache)

    def with_overrides(self, **changes: Any) -> "Scenario":
        """A copy with dataclass fields replaced (validation re-runs)."""
        return replace(self, **changes)

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """Lossless JSON-able spec; :meth:`from_dict` inverts it."""
        out: dict = {
            "name": self.name,
            "config": self.config.to_dict(),
            "jammer": self.jammer,
            "grid": {"snr_db": list(self.snr_db), "sjr_db": list(self.sjr_db)},
            "packets": int(self.packets),
            "seed": int(self.seed),
        }
        if self.description:
            out["description"] = self.description
        if self.channel is not None:
            out["channel"] = self.channel
        if self.impairments is not None:
            out["impairments"] = self.impairments
        if self.backend is not None:
            out["backend"] = self.backend
        return out

    @classmethod
    def from_dict(cls, data: dict, source: str | None = None) -> "Scenario":
        """Rebuild and validate a scenario from :meth:`to_dict` output.

        ``source`` (e.g. a file path) prefixes error messages.  Component
        specs are deep-validated: the jammer, channel and impairments are
        built once so a bad field fails here, not mid-sweep.
        """
        prefix = f"{source}: " if source else ""
        try:
            if not isinstance(data, dict):
                raise ScenarioError(f"scenario spec must be a mapping, got {type(data).__name__}")
            known = {
                "name", "description", "config", "jammer", "channel",
                "impairments", "grid", "packets", "seed", "backend",
            }
            unknown = set(data) - known
            if unknown:
                raise ScenarioError(f"unknown scenario field(s): {sorted(unknown)}")
            if "name" not in data:
                raise ScenarioError("name: field is required")
            grid = data.get("grid", {})
            if not isinstance(grid, dict):
                raise ScenarioError("grid: must be a mapping with snr_db/sjr_db lists")
            grid_unknown = set(grid) - {"snr_db", "sjr_db"}
            if grid_unknown:
                raise ScenarioError(f"unknown grid field(s): {sorted(grid_unknown)}")
            try:
                config = BHSSConfig.from_dict(data.get("config", {}))
            except ValueError as exc:
                raise ScenarioError(f"config: {exc}") from None
            description = data.get("description", "")
            if not isinstance(description, str):
                raise ScenarioError("description: must be a string")
            kwargs: dict = {
                "name": data["name"],
                "config": config,
                "jammer": data.get("jammer", {"type": "none"}),
                "channel": data.get("channel"),
                "impairments": data.get("impairments"),
                "backend": data.get("backend"),
                "description": description,
            }
            if "snr_db" in grid:
                kwargs["snr_db"] = grid["snr_db"]
            if "sjr_db" in grid:
                kwargs["sjr_db"] = grid["sjr_db"]
            if "packets" in data:
                kwargs["packets"] = data["packets"]
            if "seed" in data:
                kwargs["seed"] = data["seed"]
            return cls(**kwargs).validate()
        except ScenarioError as exc:
            if prefix:
                raise ScenarioError(f"{prefix}{exc}") from None
            raise

    def save(self, path: str) -> str:
        """Write the scenario as pretty-printed JSON; returns the path."""
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "Scenario":
        """Read and validate a scenario JSON file."""
        try:
            with open(path) as fh:
                data = json.load(fh)
        except OSError as exc:
            raise ScenarioError(f"{path}: cannot read scenario file ({exc})") from None
        except ValueError as exc:
            raise ScenarioError(f"{path}: invalid JSON ({exc})") from None
        return cls.from_dict(data, source=path)
