"""Atomic checkpoint/resume for interrupted sweeps.

An hours-long Monte-Carlo sweep must survive SIGINT, a crashed process
or a preempted machine without recomputing finished grid points.  A
:class:`SweepCheckpoint` is a single JSON file of completed
``index -> record`` pairs, keyed by the canonical hash of the sweep's
spec (for scenarios, ``stable_hash(scenario.to_dict())``), written
atomically (temp file + ``os.replace``) every ``interval`` completions.

Resume is exact: the sweep layers merge checkpointed records with
freshly computed ones *in grid order*, and JSON round-trips Python
floats bit-exactly (shortest-repr encoding), so a resumed sweep is
bit-identical to an uninterrupted run — the same guarantee the parallel
and batched paths already make.

Enabled by the ``REPRO_CHECKPOINT`` environment knob: unset/``0``/``off``
disables, ``1``/``on`` selects the default directory
(``~/.cache/repro-bhss/checkpoints``), anything else is the directory
path.  A checkpoint whose stored key, point count or checksum does not
match is ignored (the sweep recomputes from scratch) — a stale or
corrupt checkpoint can never poison results.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from typing import Any, Mapping

__all__ = ["SweepCheckpoint", "make_checkpoint", "resolve_checkpoint_dir"]

_DEFAULT_DIR = os.path.join("~", ".cache", "repro-bhss", "checkpoints")
_OFF_VALUES = {"", "0", "off", "no", "false"}
_ON_VALUES = {"1", "on", "yes", "true"}

#: checkpoint directories already warned about (flush failures warn once)
_WARNED_DIRS: set[str] = set()


def resolve_checkpoint_dir(env: str = "REPRO_CHECKPOINT") -> str | None:
    """Checkpoint directory from the environment, or ``None`` (disabled).

    Unset / ``0`` / ``off`` → disabled; ``1`` / ``on`` → the default
    directory; anything else is taken as the directory path.
    """
    raw = os.environ.get(env)
    if raw is None or raw.strip().lower() in _OFF_VALUES:
        return None
    if raw.strip().lower() in _ON_VALUES:
        return os.path.expanduser(_DEFAULT_DIR)
    return os.path.expanduser(raw)


def _body_digest(payload: Mapping[str, Any]) -> str:
    """Checksum of the checkpoint payload's canonical JSON text."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


class SweepCheckpoint:
    """Periodic atomic JSON checkpoint of one sweep's completed records.

    Parameters
    ----------
    directory:
        Directory holding checkpoint files (created lazily on flush).
    key:
        Canonical spec hash of the sweep (e.g. ``stable_hash`` of the
        scenario dict).  Names the file and guards resume: a checkpoint
        written for a different spec is never loaded.
    total:
        Number of grid points in the sweep; a checkpoint for a different
        grid size is ignored.
    interval:
        Completions between flushes (default 1: every record).
    """

    def __init__(self, directory: str, key: str, total: int, interval: int = 1) -> None:
        self.directory = os.path.expanduser(directory)
        self.key = str(key)
        self.total = int(total)
        self.interval = max(1, int(interval))
        self._done: dict[int, Any] = {}
        self._unflushed = 0

    @classmethod
    def from_env(
        cls, key: str, total: int, env: str = "REPRO_CHECKPOINT", interval: int = 1
    ) -> "SweepCheckpoint | None":
        """The ``REPRO_CHECKPOINT``-configured checkpoint, or ``None``."""
        directory = resolve_checkpoint_dir(env)
        if directory is None:
            return None
        return cls(directory, key, total, interval=interval)

    @property
    def path(self) -> str:
        """The checkpoint file for this sweep's key."""
        return os.path.join(self.directory, f"{self.key[:32]}.ckpt.json")

    # -- persistence ----------------------------------------------------------

    def load(self) -> dict[int, Any]:
        """Completed ``index -> record`` pairs from disk.

        Returns ``{}`` (and starts fresh) when the file is absent,
        unreadable, fails its checksum, or was written for a different
        key or grid size.  Loaded records are retained, so later flushes
        re-write the union of old and new completions.
        """
        try:
            with open(self.path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return {}
        if not isinstance(data, dict):
            return {}
        payload = data.get("payload")
        if not isinstance(payload, dict) or data.get("sha256") != _body_digest(payload):
            warnings.warn(
                f"ignoring corrupt sweep checkpoint {self.path} (checksum mismatch)",
                RuntimeWarning,
                stacklevel=2,
            )
            return {}
        if payload.get("key") != self.key or payload.get("total") != self.total:
            return {}
        done = payload.get("done")
        if not isinstance(done, dict):
            return {}
        out: dict[int, Any] = {}
        for raw_index, record in done.items():
            try:
                index = int(raw_index)
            except (TypeError, ValueError):
                return {}
            if not 0 <= index < self.total:
                return {}
            out[index] = record
        self._done = dict(out)
        self._unflushed = 0
        return out

    def record(self, index: int, record: Any) -> None:
        """Note one completed grid point (flushes every ``interval``)."""
        self._done[int(index)] = record
        self._unflushed += 1
        if self._unflushed >= self.interval:
            self.flush()

    def flush(self) -> None:
        """Atomically persist the completed set (best effort, warns once)."""
        if self._unflushed == 0 and os.path.exists(self.path):
            return
        payload = {
            "key": self.key,
            "total": self.total,
            "done": {str(i): self._done[i] for i in sorted(self._done)},
        }
        document = {"sha256": _body_digest(payload), "payload": payload}
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(document, fh)
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError as exc:
            if self.directory not in _WARNED_DIRS:
                _WARNED_DIRS.add(self.directory)
                warnings.warn(
                    f"cannot write sweep checkpoint under {self.directory!r}: {exc} "
                    "(the sweep continues without checkpointing)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return
        self._unflushed = 0

    def complete(self) -> None:
        """Remove the checkpoint after a fully merged, successful sweep."""
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def completed(self) -> dict[int, Any]:
        """A copy of the in-memory completed set."""
        return dict(self._done)


def make_checkpoint(
    checkpoint: "SweepCheckpoint | str | bool | None",
    key: str,
    total: int,
    interval: int = 1,
) -> "SweepCheckpoint | None":
    """Normalize a sweep layer's ``checkpoint`` argument.

    ``None`` defers to ``REPRO_CHECKPOINT``; ``False`` forces
    checkpointing off; ``True`` selects the default directory; a string
    is the directory; a ready :class:`SweepCheckpoint` passes through
    unchanged (its own key/total win).
    """
    if checkpoint is False:
        return None
    if checkpoint is None:
        return SweepCheckpoint.from_env(key, total, interval=interval)
    if checkpoint is True:
        return SweepCheckpoint(os.path.expanduser(_DEFAULT_DIR), key, total, interval=interval)
    if isinstance(checkpoint, SweepCheckpoint):
        return checkpoint
    return SweepCheckpoint(str(checkpoint), key, total, interval=interval)
