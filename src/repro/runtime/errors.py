"""Structured error taxonomy of the supervised runtime.

Every terminal task failure the executor can raise carries the *input
index* of the item that failed and the number of attempts it consumed, so
a crashed sweep names the exact grid point to investigate — and so the
checkpoint layer can resume precisely at the failure.  All three concrete
failures subclass :class:`TaskFailure` (itself a ``RuntimeError``), which
keeps historical ``except RuntimeError`` call sites working.

``TaskTimeout``
    The task exceeded the per-task wall-clock budget (``REPRO_TIMEOUT``)
    on its final attempt — a hung child or a pathologically slow point.
``WorkerCrash``
    The pool child evaluating the task died (OOM kill, hard exit) or hit
    an injected crash fault, and retries were exhausted.
``TaskError``
    The task function itself raised on every attempt; the original
    exception rides along as ``__cause__``.
"""

from __future__ import annotations

__all__ = ["TaskFailure", "TaskTimeout", "WorkerCrash", "TaskError"]


class TaskFailure(RuntimeError):
    """A task failed terminally after ``attempts`` tries.

    Attributes
    ----------
    index:
        Position of the failing item in the mapped input sequence.
    attempts:
        Total attempts consumed (first try plus retries).
    """

    def __init__(self, message: str, *, index: int, attempts: int) -> None:
        super().__init__(message)
        self.index = int(index)
        self.attempts = int(attempts)


class TaskTimeout(TaskFailure):
    """A task exceeded its per-task wall-clock timeout on the last attempt."""

    def __init__(
        self, message: str, *, index: int, attempts: int, timeout: float
    ) -> None:
        super().__init__(message, index=index, attempts=attempts)
        self.timeout = float(timeout)


class WorkerCrash(TaskFailure):
    """The worker process evaluating a task died before returning."""


class TaskError(TaskFailure):
    """The task function raised on every attempt (original as ``__cause__``)."""
