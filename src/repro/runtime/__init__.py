"""Parallel execution runtime: supervised pools, caching, checkpoints.

The sweep and link layers are embarrassingly parallel once every packet is
seeded independently (``child_rng(seed, "packet", str(k))``): grid points
and packet chunks can be fanned out over a process pool and merged in
deterministic order, producing *bit-identical* results to a serial run.
This package provides the pieces the analysis layer threads through:

``ParallelExecutor``
    Ordered, fork-based ``map`` over a ``multiprocessing`` pool with a
    serial fallback (the default when ``REPRO_WORKERS`` is unset) —
    *supervised*: per-task wall-clock timeouts (``REPRO_TIMEOUT``),
    bounded retries with deterministic backoff (``REPRO_RETRIES``),
    dead-child detection, and graceful degradation to the serial path
    when the pool is unhealthy.  Terminal failures carry a structured
    taxonomy (``TaskTimeout`` / ``WorkerCrash`` / ``TaskError``).
``ResultCache``
    On-disk memoization of packet-batch statistics keyed by a stable hash
    of (config fingerprint, operating point, seed, packet budget) —
    enabled by ``REPRO_CACHE``.  Entries are checksummed; corrupt files
    are quarantined and recomputed, and ``verify()``/``gc()`` audit and
    clean a cache directory (surfaced as ``repro-bhss cache``).
``SweepCheckpoint``
    Periodic atomic JSON checkpoints of completed grid points, keyed by
    the sweep's canonical spec hash (``REPRO_CHECKPOINT``), enabling
    bit-identical resume of interrupted sweeps.
``FaultPlan``
    Deterministic fault injection (``REPRO_FAULTS``) used by the chaos
    tests to prove every recovery path above.
``SweepTiming``
    Lightweight instrumentation (per-point wall time, points/sec,
    packets/sec, worker utilization, recovered retries) attached to
    sweep results and surfaced by the benchmark harness and the
    ``repro-bhss bench`` subcommand.
``StageProfiler``
    Exclusive per-stage wall-time accumulator the backend dispatch layer
    (:mod:`repro.backend`) records DSP kernel timings into; rendered by
    ``repro-bhss bench --profile`` as the per-backend stage breakdown.
"""

from repro.runtime.cache import CacheAudit, ResultCache, canonical, stable_hash
from repro.runtime.checkpoint import SweepCheckpoint, make_checkpoint, resolve_checkpoint_dir
from repro.runtime.errors import TaskError, TaskFailure, TaskTimeout, WorkerCrash
from repro.runtime.executor import (
    MapReport,
    ParallelExecutor,
    resolve_batch,
    resolve_retries,
    resolve_timeout,
    resolve_workers,
    spec_runner_ref,
)
from repro.runtime.faults import FaultPlan, InjectedCrash, inject_faults
from repro.runtime.instrument import StageProfiler, StageRecord, SweepTiming

__all__ = [
    "ParallelExecutor",
    "MapReport",
    "StageProfiler",
    "StageRecord",
    "ResultCache",
    "CacheAudit",
    "canonical",
    "stable_hash",
    "SweepCheckpoint",
    "make_checkpoint",
    "resolve_checkpoint_dir",
    "SweepTiming",
    "TaskFailure",
    "TaskTimeout",
    "WorkerCrash",
    "TaskError",
    "FaultPlan",
    "InjectedCrash",
    "inject_faults",
    "resolve_batch",
    "resolve_retries",
    "resolve_timeout",
    "resolve_workers",
    "spec_runner_ref",
]
