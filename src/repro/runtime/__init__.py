"""Parallel execution runtime: process pools, result caching, timing.

The sweep and link layers are embarrassingly parallel once every packet is
seeded independently (``child_rng(seed, "packet", str(k))``): grid points
and packet chunks can be fanned out over a process pool and merged in
deterministic order, producing *bit-identical* results to a serial run.
This package provides the three pieces the analysis layer threads through:

``ParallelExecutor``
    Ordered, fork-based ``map`` over a ``multiprocessing`` pool, with a
    serial fallback (the default when ``REPRO_WORKERS`` is unset) and
    per-item wall-time capture.
``ResultCache``
    On-disk memoization of packet-batch statistics keyed by a stable hash
    of (config fingerprint, operating point, seed, packet budget) —
    enabled by the ``REPRO_CACHE`` environment variable.
``SweepTiming``
    Lightweight instrumentation (per-point wall time, points/sec,
    packets/sec, worker utilization) attached to sweep results and
    surfaced by the benchmark harness and the ``repro-bhss bench``
    subcommand.
"""

from repro.runtime.cache import ResultCache, canonical, stable_hash
from repro.runtime.executor import (
    MapReport,
    ParallelExecutor,
    resolve_batch,
    resolve_workers,
    spec_runner_ref,
)
from repro.runtime.instrument import SweepTiming

__all__ = [
    "ParallelExecutor",
    "MapReport",
    "ResultCache",
    "canonical",
    "stable_hash",
    "SweepTiming",
    "resolve_batch",
    "resolve_workers",
    "spec_runner_ref",
]
