"""Ordered parallel ``map`` over a forked process pool.

Sweep evaluators and packet-chunk workers are usually *closures* (they
capture a link, a jammer factory, CLI arguments), which the pickling
transport of ``concurrent.futures`` cannot ship.  On platforms with
``fork`` (Linux — the only place a multi-worker sweep makes sense for this
library) the closure does not need to be shipped at all: the payload is
parked in a module-level global immediately before the pool forks, the
children inherit it through copy-on-write memory, and only integer indices
and picklable *results* cross the pipe.

:meth:`ParallelExecutor.map_spec` is the *spec transport*: the work
function is an importable module-level callable (addressed as
``"module:qualname"``) and the shared context is plain picklable data, so
workers rebuild everything from the spec and nothing rides on
fork-inherited globals.  Declarative scenario sweeps use this path.

Determinism: ``map``/``map_timed``/``map_spec`` always return results in
input order, whatever order the workers finished in, so any fold over the
results is identical to the serial fold.  Workers never nest pools — a
worker that calls back into the executor gets the serial path.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

__all__ = ["ParallelExecutor", "MapReport", "resolve_workers", "resolve_batch", "spec_runner_ref"]

#: Packets per stacked call when ``REPRO_BATCH`` is unset.
DEFAULT_BATCH = 64

#: (fn, items) visible to forked children; only set around a pool launch.
_WORKER_PAYLOAD: tuple | None = None

#: Set in pool children so nested executors degrade to serial.
_IN_WORKER = False


def _init_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def _run_indexed(index: int):
    """Pool target: run payload item ``index``, timing the call."""
    fn, items = _WORKER_PAYLOAD
    t0 = time.perf_counter()
    value = fn(items[index])
    return index, value, time.perf_counter() - t0


#: per-process memo of resolved ``"module:qualname"`` spec runners.
_SPEC_RUNNERS: dict[str, Callable] = {}


def _import_spec_runner(ref: str) -> Callable:
    """Resolve a ``"module:qualname"`` reference to the callable it names."""
    fn = _SPEC_RUNNERS.get(ref)
    if fn is None:
        module_name, _, qualname = ref.partition(":")
        try:
            obj = importlib.import_module(module_name)
            for part in qualname.split("."):
                obj = getattr(obj, part)
        except (ImportError, AttributeError) as exc:
            raise ValueError(f"cannot import spec runner {ref!r}: {exc}") from None
        if not callable(obj):
            raise ValueError(f"spec runner {ref!r} is not callable")
        fn = _SPEC_RUNNERS[ref] = obj
    return fn


def spec_runner_ref(runner) -> str:
    """The ``"module:qualname"`` address of an importable callable.

    Accepts either the reference string itself or a module-level function;
    in the latter case the reference is verified to resolve back to the
    very same object, so closures, lambdas and methods — which a fresh
    worker process could never re-import — are rejected up front.
    """
    if isinstance(runner, str):
        ref = runner
        if ":" not in ref:
            raise ValueError(f"spec runner reference must be 'module:qualname', got {ref!r}")
        _import_spec_runner(ref)
        return ref
    module = getattr(runner, "__module__", None)
    qualname = getattr(runner, "__qualname__", None)
    if not module or not qualname:
        raise ValueError(f"spec runner {runner!r} has no importable module/qualname")
    ref = f"{module}:{qualname}"
    if _import_spec_runner(ref) is not runner:
        raise ValueError(
            f"spec runner {ref!r} does not resolve back to the given callable; "
            "it must be a module-level function (no closures or lambdas)"
        )
    return ref


def _run_spec_indexed(arg: tuple):
    """Pool target for :meth:`ParallelExecutor.map_spec`: one (spec, item) call."""
    ref, spec, index, item = arg
    fn = _import_spec_runner(ref)
    t0 = time.perf_counter()
    value = fn(spec, item)
    return index, value, time.perf_counter() - t0


def resolve_workers(env: str = "REPRO_WORKERS") -> int:
    """Worker count from the environment; 0 (= serial) when unset.

    ``REPRO_WORKERS=4`` fans sweeps and packet batches out over 4
    processes; unset, ``0`` and ``1`` all mean the plain serial path.
    """
    raw = os.environ.get(env)
    if raw is None or raw.strip() == "":
        return 0
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{env} must be an integer, got {raw!r}") from None
    if value < 0:
        raise ValueError(f"{env} must be >= 0, got {value}")
    return value


def resolve_batch(env: str = "REPRO_BATCH") -> int:
    """Packet batch size from the environment; the default when unset.

    ``REPRO_BATCH=128`` stacks 128 packets per vectorized link call;
    ``REPRO_BATCH=0`` (or ``1``) disables batching and selects the serial
    per-packet path.  Unset means the default batch of ``DEFAULT_BATCH``
    packets — the batched path is bit-identical to the serial one, so it
    is safe to prefer it everywhere.
    """
    raw = os.environ.get(env)
    if raw is None or raw.strip() == "":
        return DEFAULT_BATCH
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{env} must be an integer, got {raw!r}") from None
    if value < 0:
        raise ValueError(f"{env} must be >= 0, got {value}")
    return value


@dataclass(frozen=True)
class MapReport:
    """Results of one (possibly parallel) map, with timing telemetry.

    ``values`` are in input order.  ``seconds`` holds each item's own wall
    time as measured inside the worker; ``wall_seconds`` is the end-to-end
    time of the whole map, so ``busy_seconds / (workers * wall_seconds)``
    estimates how well the pool was utilized.
    """

    values: tuple
    seconds: tuple[float, ...]
    wall_seconds: float
    workers: int

    @property
    def busy_seconds(self) -> float:
        """Total in-worker compute time across all items."""
        return float(sum(self.seconds))

    @property
    def utilization(self) -> float:
        """Fraction of the pool's wall-time capacity spent computing."""
        if self.wall_seconds <= 0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (self.workers * self.wall_seconds))


class ParallelExecutor:
    """Ordered map over items, serial or across a forked worker pool.

    Parameters
    ----------
    workers:
        Number of pool processes.  ``0`` or ``1`` selects the serial
        path; ``None`` reads ``REPRO_WORKERS`` from the environment.
        Serial is also forced where ``fork`` is unavailable and inside
        pool workers (no nested pools).
    """

    def __init__(self, workers: int | None = None) -> None:
        self.workers = resolve_workers() if workers is None else max(0, int(workers))

    @classmethod
    def from_env(cls) -> "ParallelExecutor":
        """The executor configured by ``REPRO_WORKERS`` (serial if unset)."""
        return cls(resolve_workers())

    @staticmethod
    def fork_available() -> bool:
        """Whether the forked-pool transport exists on this platform."""
        return "fork" in multiprocessing.get_all_start_methods()

    @property
    def parallel(self) -> bool:
        """Whether maps will actually use a worker pool."""
        return self.workers > 1 and self.fork_available() and not _IN_WORKER

    def map(self, fn: Callable, items: Iterable) -> list:
        """``[fn(x) for x in items]`` with pool fan-out, in input order."""
        return list(self.map_timed(fn, items).values)

    def map_timed(self, fn: Callable, items: Iterable) -> MapReport:
        """Like :meth:`map` but returning a :class:`MapReport` with timing."""
        items = list(items)
        if not items:
            return MapReport(values=(), seconds=(), wall_seconds=0.0, workers=1)
        t0 = time.perf_counter()
        if not self.parallel or len(items) < 2:
            values, seconds = self._map_serial(fn, items)
            workers = 1
        else:
            values, seconds = self._map_pool(fn, items)
            workers = min(self.workers, len(items))
        return MapReport(
            values=tuple(values),
            seconds=tuple(seconds),
            wall_seconds=time.perf_counter() - t0,
            workers=workers,
        )

    def map_spec(self, runner, spec, items: Iterable) -> MapReport:
        """Ordered map through the picklable *spec transport*.

        ``runner`` is a module-level callable (or its ``"module:qualname"``
        reference) invoked as ``runner(spec, item)``; ``spec`` and every
        item must be plain picklable data.  Workers re-import the runner
        and rebuild whatever they need from the spec, so — unlike
        :meth:`map` — nothing depends on fork-inherited globals and the
        transport works under any ``multiprocessing`` start method.
        """
        ref = spec_runner_ref(runner)
        items = list(items)
        if not items:
            return MapReport(values=(), seconds=(), wall_seconds=0.0, workers=1)
        t0 = time.perf_counter()
        if self.workers > 1 and not _IN_WORKER and len(items) >= 2:
            values, seconds = self._map_spec_pool(ref, spec, items)
            workers = min(self.workers, len(items))
        else:
            fn = _import_spec_runner(ref)
            values, seconds = self._map_serial(lambda item: fn(spec, item), items)
            workers = 1
        return MapReport(
            values=tuple(values),
            seconds=tuple(seconds),
            wall_seconds=time.perf_counter() - t0,
            workers=workers,
        )

    def _map_spec_pool(self, ref: str, spec, items: Sequence) -> tuple[list, list]:
        n = len(items)
        processes = min(self.workers, n)
        chunksize = max(1, n // (4 * processes))
        ctx = multiprocessing.get_context()
        args = [(ref, spec, i, item) for i, item in enumerate(items)]
        with ctx.Pool(processes=processes, initializer=_init_worker) as pool:
            triples = pool.map(_run_spec_indexed, args, chunksize=chunksize)
        values: list = [None] * n
        seconds: list = [0.0] * n
        for index, value, secs in triples:
            values[index] = value
            seconds[index] = secs
        return values, seconds

    @staticmethod
    def _map_serial(fn: Callable, items: Sequence) -> tuple[list, list]:
        values, seconds = [], []
        for item in items:
            t0 = time.perf_counter()
            values.append(fn(item))
            seconds.append(time.perf_counter() - t0)
        return values, seconds

    def _map_pool(self, fn: Callable, items: Sequence) -> tuple[list, list]:
        global _WORKER_PAYLOAD
        n = len(items)
        processes = min(self.workers, n)
        # Small chunks keep a few heavy grid points from serializing the
        # tail; index order is restored from the returned triples anyway.
        chunksize = max(1, n // (4 * processes))
        ctx = multiprocessing.get_context("fork")
        _WORKER_PAYLOAD = (fn, items)
        try:
            with ctx.Pool(processes=processes, initializer=_init_worker) as pool:
                triples = pool.map(_run_indexed, range(n), chunksize=chunksize)
        finally:
            _WORKER_PAYLOAD = None
        values: list = [None] * n
        seconds: list = [0.0] * n
        for index, value, secs in triples:
            values[index] = value
            seconds[index] = secs
        return values, seconds
