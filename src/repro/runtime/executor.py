"""Supervised, ordered parallel ``map`` over a forked process pool.

Sweep evaluators and packet-chunk workers are usually *closures* (they
capture a link, a jammer factory, CLI arguments), which the pickling
transport of ``concurrent.futures`` cannot ship.  On platforms with
``fork`` (Linux — the only place a multi-worker sweep makes sense for this
library) the closure does not need to be shipped at all: the payload is
parked in a module-level global immediately before the pool forks, the
children inherit it through copy-on-write memory, and only integer indices
and picklable *results* cross the pipe.

:meth:`ParallelExecutor.map_spec` is the *spec transport*: the work
function is an importable module-level callable (addressed as
``"module:qualname"``) and the shared context is plain picklable data, so
workers rebuild everything from the spec and nothing rides on
fork-inherited globals.  Declarative scenario sweeps use this path.

Supervision: tasks are submitted individually through a sliding window of
``apply_async`` calls (window = pool size, so a task's wall clock starts
when a worker picks it up).  The supervisor loop detects three failure
modes and recovers from all of them:

* a task raising — retried in place, up to ``REPRO_RETRIES`` times with
  deterministic exponential backoff, then surfaced as
  :class:`~repro.runtime.errors.TaskError`;
* a hung task — past the ``REPRO_TIMEOUT`` per-task wall-clock budget the
  pool is recycled (terminating the stuck child) and the task retried,
  terminally a :class:`~repro.runtime.errors.TaskTimeout`;
* a dead child (OOM kill, hard exit) — detected from the worker table
  even without a timeout, classified as
  :class:`~repro.runtime.errors.WorkerCrash`.

A pool that keeps failing (more than ``MAX_POOL_RESTARTS`` recycles) is
abandoned and the remaining items **degrade gracefully to the serial
path**, so an unhealthy machine finishes slowly instead of not at all.
Fault injection (``REPRO_FAULTS``, :mod:`repro.runtime.faults`) exercises
every one of these paths deterministically in the test suite.

Determinism: ``map``/``map_timed``/``map_spec`` always return results in
input order, whatever order the workers finished in — and a retried task
re-evaluates the same pure function of the same item — so any fold over
the results is identical to the serial fold, faults or no faults.
Workers never nest pools: a worker that calls back into the executor gets
the serial path.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.runtime.errors import TaskError, TaskTimeout, WorkerCrash
from repro.runtime.faults import InjectedCrash, inject_faults

__all__ = [
    "ParallelExecutor",
    "MapReport",
    "resolve_workers",
    "resolve_batch",
    "resolve_timeout",
    "resolve_retries",
    "spec_runner_ref",
]

#: Packets per stacked call when ``REPRO_BATCH`` is unset.
DEFAULT_BATCH = 64

#: Retries per task when ``REPRO_RETRIES`` is unset.
DEFAULT_RETRIES = 2

#: First retry backoff; doubles per attempt (deterministic, no jitter).
BACKOFF_BASE = 0.05

#: Ceiling on a single backoff sleep.
BACKOFF_CAP = 2.0

#: Pool recycles (hang/crash teardowns) before degrading to serial.
MAX_POOL_RESTARTS = 3

#: Supervisor poll interval while waiting on in-flight tasks.
_POLL_SECONDS = 0.01

#: (fn, items) visible to forked children; only set around a pool launch.
_WORKER_PAYLOAD: tuple | None = None

#: Set in pool children so nested executors degrade to serial.
_IN_WORKER = False


def _init_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def _run_indexed(arg: tuple):
    """Pool target: run payload item ``index``, timing the call."""
    index, attempt = arg
    fn, items = _WORKER_PAYLOAD
    inject_faults(index, attempt)
    t0 = time.perf_counter()
    value = fn(items[index])
    return index, value, time.perf_counter() - t0


#: per-process memo of resolved ``"module:qualname"`` spec runners.
_SPEC_RUNNERS: dict[str, Callable] = {}


def _import_spec_runner(ref: str) -> Callable:
    """Resolve a ``"module:qualname"`` reference to the callable it names."""
    fn = _SPEC_RUNNERS.get(ref)
    if fn is None:
        module_name, _, qualname = ref.partition(":")
        try:
            obj = importlib.import_module(module_name)
            for part in qualname.split("."):
                obj = getattr(obj, part)
        except (ImportError, AttributeError) as exc:
            raise ValueError(f"cannot import spec runner {ref!r}: {exc}") from None
        if not callable(obj):
            raise ValueError(f"spec runner {ref!r} is not callable")
        fn = _SPEC_RUNNERS[ref] = obj
    return fn


def spec_runner_ref(runner) -> str:
    """The ``"module:qualname"`` address of an importable callable.

    Accepts either the reference string itself or a module-level function;
    in the latter case the reference is verified to resolve back to the
    very same object, so closures, lambdas and methods — which a fresh
    worker process could never re-import — are rejected up front.
    """
    if isinstance(runner, str):
        ref = runner
        if ":" not in ref:
            raise ValueError(f"spec runner reference must be 'module:qualname', got {ref!r}")
        _import_spec_runner(ref)
        return ref
    module = getattr(runner, "__module__", None)
    qualname = getattr(runner, "__qualname__", None)
    if not module or not qualname:
        raise ValueError(f"spec runner {runner!r} has no importable module/qualname")
    ref = f"{module}:{qualname}"
    if _import_spec_runner(ref) is not runner:
        raise ValueError(
            f"spec runner {ref!r} does not resolve back to the given callable; "
            "it must be a module-level function (no closures or lambdas)"
        )
    return ref


def _run_spec_indexed(arg: tuple):
    """Pool target for :meth:`ParallelExecutor.map_spec`: one (spec, item) call."""
    ref, spec, index, attempt, item = arg
    fn = _import_spec_runner(ref)
    inject_faults(index, attempt)
    t0 = time.perf_counter()
    value = fn(spec, item)
    return index, value, time.perf_counter() - t0


def resolve_workers(env: str = "REPRO_WORKERS") -> int:
    """Worker count from the environment; 0 (= serial) when unset.

    ``REPRO_WORKERS=4`` fans sweeps and packet batches out over 4
    processes; unset, ``0`` and ``1`` all mean the plain serial path.
    Negative or non-integer values raise ``ValueError`` naming the
    variable — garbage never silently means "unset".
    """
    raw = os.environ.get(env)
    if raw is None or raw.strip() == "":
        return 0
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{env} must be an integer, got {raw!r}") from None
    if value < 0:
        raise ValueError(f"{env} must be >= 0, got {value}")
    return value


def resolve_batch(env: str = "REPRO_BATCH") -> int:
    """Packet batch size from the environment; the default when unset.

    ``REPRO_BATCH=128`` stacks 128 packets per vectorized link call;
    ``REPRO_BATCH=0`` (or ``1``) disables batching and selects the serial
    per-packet path.  Unset means the default batch of ``DEFAULT_BATCH``
    packets — the batched path is bit-identical to the serial one, so it
    is safe to prefer it everywhere.  Negative or non-integer values
    raise ``ValueError`` naming the variable.
    """
    raw = os.environ.get(env)
    if raw is None or raw.strip() == "":
        return DEFAULT_BATCH
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{env} must be an integer, got {raw!r}") from None
    if value < 0:
        raise ValueError(f"{env} must be >= 0, got {value}")
    return value


def resolve_timeout(env: str = "REPRO_TIMEOUT") -> float | None:
    """Per-task wall-clock timeout in seconds; ``None`` (no limit) when unset.

    ``REPRO_TIMEOUT=120`` recycles the pool and retries any task that has
    not returned within 120 s.  Unset, empty and ``0`` disable the limit;
    negative or non-numeric values raise ``ValueError`` naming the
    variable.
    """
    raw = os.environ.get(env)
    if raw is None or raw.strip() == "":
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{env} must be a number of seconds, got {raw!r}") from None
    if value < 0:
        raise ValueError(f"{env} must be >= 0, got {value}")
    return value if value > 0 else None


def resolve_retries(env: str = "REPRO_RETRIES") -> int:
    """Retry budget per task; ``DEFAULT_RETRIES`` when unset.

    ``REPRO_RETRIES=0`` fails fast on the first error; ``REPRO_RETRIES=5``
    gives every task five more chances (with deterministic exponential
    backoff) before the sweep raises.  Negative or non-integer values
    raise ``ValueError`` naming the variable.
    """
    raw = os.environ.get(env)
    if raw is None or raw.strip() == "":
        return DEFAULT_RETRIES
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{env} must be an integer, got {raw!r}") from None
    if value < 0:
        raise ValueError(f"{env} must be >= 0, got {value}")
    return value


def _backoff_seconds(failure_count: int) -> float:
    """Deterministic exponential backoff before retry ``failure_count``.

    No jitter on purpose: the delay is a pure function of the attempt
    number, so chaos tests and reproductions see identical schedules.
    """
    return min(BACKOFF_CAP, BACKOFF_BASE * (2.0 ** (failure_count - 1)))


@dataclass(frozen=True)
class MapReport:
    """Results of one (possibly parallel) map, with timing telemetry.

    ``values`` are in input order.  ``seconds`` holds each item's own wall
    time as measured inside the worker; ``wall_seconds`` is the end-to-end
    time of the whole map, so ``busy_seconds / (workers * wall_seconds)``
    estimates how well the pool was utilized.  ``retries`` counts task
    attempts beyond the first (crashes, hangs and errors that were
    recovered by the supervisor).
    """

    values: tuple
    seconds: tuple[float, ...]
    wall_seconds: float
    workers: int
    retries: int = 0

    @property
    def busy_seconds(self) -> float:
        """Total in-worker compute time across all items."""
        return float(sum(self.seconds))

    @property
    def utilization(self) -> float:
        """Fraction of the pool's wall-time capacity spent computing."""
        if self.wall_seconds <= 0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (self.workers * self.wall_seconds))


class ParallelExecutor:
    """Ordered map over items, serial or across a supervised worker pool.

    Parameters
    ----------
    workers:
        Number of pool processes.  ``0`` or ``1`` selects the serial
        path; ``None`` reads ``REPRO_WORKERS`` from the environment.
        Serial is also forced where ``fork`` is unavailable and inside
        pool workers (no nested pools).
    timeout:
        Per-task wall-clock budget in seconds (``None`` reads
        ``REPRO_TIMEOUT``; ``0`` disables).
    retries:
        Retry budget per task (``None`` reads ``REPRO_RETRIES``).
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        timeout: float | None = None,
        retries: int | None = None,
    ) -> None:
        self.workers = resolve_workers() if workers is None else max(0, int(workers))
        if timeout is None:
            self.timeout = resolve_timeout()
        else:
            self.timeout = float(timeout) if timeout > 0 else None
        self.retries = resolve_retries() if retries is None else max(0, int(retries))

    @classmethod
    def from_env(cls) -> "ParallelExecutor":
        """The executor configured by ``REPRO_WORKERS`` (serial if unset)."""
        return cls(resolve_workers())

    @staticmethod
    def fork_available() -> bool:
        """Whether the forked-pool transport exists on this platform."""
        return "fork" in multiprocessing.get_all_start_methods()

    @property
    def parallel(self) -> bool:
        """Whether maps will actually use a worker pool."""
        return self.workers > 1 and self.fork_available() and not _IN_WORKER

    def map(self, fn: Callable, items: Iterable) -> list:
        """``[fn(x) for x in items]`` with pool fan-out, in input order."""
        return list(self.map_timed(fn, items).values)

    def map_timed(
        self,
        fn: Callable,
        items: Iterable,
        *,
        on_result: Callable[[int, object], None] | None = None,
    ) -> MapReport:
        """Like :meth:`map` but returning a :class:`MapReport` with timing.

        ``on_result(index, value)`` — when given — is invoked in the
        *supervisor* process as each item completes (completion order,
        not input order); the checkpoint layer hooks it to persist
        progress incrementally.
        """
        items = list(items)
        if not items:
            return MapReport(values=(), seconds=(), wall_seconds=0.0, workers=1)
        n = len(items)
        t0 = time.perf_counter()
        values: list = [None] * n
        seconds: list = [0.0] * n
        attempts = [0] * n
        if not self.parallel or n < 2:
            retries = self._serial_complete(
                lambda index: fn(items[index]),
                list(range(n)), attempts, values, seconds, on_result,
            )
            workers = 1
        else:
            global _WORKER_PAYLOAD
            _WORKER_PAYLOAD = (fn, items)
            try:
                retries = self._pool_supervised(
                    submit=lambda pool, index, attempt: pool.apply_async(
                        _run_indexed, ((index, attempt),)
                    ),
                    serial_call=lambda index: fn(items[index]),
                    context=multiprocessing.get_context("fork"),
                    n=n, values=values, seconds=seconds, attempts=attempts,
                    on_result=on_result,
                )
            finally:
                # Always drop the payload: keeping it would pin the captured
                # link/jammer objects (and their arrays) for the process
                # lifetime after the pool is gone.
                _WORKER_PAYLOAD = None
            workers = min(self.workers, n)
        return MapReport(
            values=tuple(values),
            seconds=tuple(seconds),
            wall_seconds=time.perf_counter() - t0,
            workers=workers,
            retries=retries,
        )

    def map_spec(
        self,
        runner,
        spec,
        items: Iterable,
        *,
        on_result: Callable[[int, object], None] | None = None,
    ) -> MapReport:
        """Ordered map through the picklable *spec transport*.

        ``runner`` is a module-level callable (or its ``"module:qualname"``
        reference) invoked as ``runner(spec, item)``; ``spec`` and every
        item must be plain picklable data.  Workers re-import the runner
        and rebuild whatever they need from the spec, so — unlike
        :meth:`map` — nothing depends on fork-inherited globals and the
        transport works under any ``multiprocessing`` start method.
        ``on_result`` behaves as in :meth:`map_timed`.
        """
        ref = spec_runner_ref(runner)
        items = list(items)
        if not items:
            return MapReport(values=(), seconds=(), wall_seconds=0.0, workers=1)
        n = len(items)
        t0 = time.perf_counter()
        values: list = [None] * n
        seconds: list = [0.0] * n
        attempts = [0] * n
        fn = _import_spec_runner(ref)
        if self.workers > 1 and not _IN_WORKER and n >= 2:
            retries = self._pool_supervised(
                submit=lambda pool, index, attempt: pool.apply_async(
                    _run_spec_indexed, ((ref, spec, index, attempt, items[index]),)
                ),
                serial_call=lambda index: fn(spec, items[index]),
                context=multiprocessing.get_context(),
                n=n, values=values, seconds=seconds, attempts=attempts,
                on_result=on_result,
            )
            workers = min(self.workers, n)
        else:
            retries = self._serial_complete(
                lambda index: fn(spec, items[index]),
                list(range(n)), attempts, values, seconds, on_result,
            )
            workers = 1
        return MapReport(
            values=tuple(values),
            seconds=tuple(seconds),
            wall_seconds=time.perf_counter() - t0,
            workers=workers,
            retries=retries,
        )

    # -- supervised execution -------------------------------------------------

    def _terminal_failure(self, kind: str, index: int, attempts: int, cause):
        """Build the taxonomy error for a task that exhausted its retries."""
        if kind == "timeout":
            assert self.timeout is not None
            return TaskTimeout(
                f"task {index} exceeded the {self.timeout:g}s per-task timeout "
                f"({attempts} attempt(s))",
                index=index, attempts=attempts, timeout=self.timeout,
            )
        if kind == "crash":
            suffix = f": {cause}" if cause is not None else ""
            error: TaskError | WorkerCrash = WorkerCrash(
                f"worker evaluating task {index} crashed ({attempts} attempt(s)){suffix}",
                index=index, attempts=attempts,
            )
        else:
            error = TaskError(
                f"task {index} raised on all {attempts} attempt(s): {cause!r}",
                index=index, attempts=attempts,
            )
        error.__cause__ = cause
        return error

    def _serial_complete(
        self,
        call: Callable[[int], object],
        pending: Sequence[int],
        attempts: list,
        values: list,
        seconds: list,
        on_result: Callable[[int, object], None] | None,
    ) -> int:
        """Run ``pending`` indices in order with fault injection + retries.

        Serves both the plain serial path and the graceful-degradation
        tail of an unhealthy pool (which is why ``attempts`` carries over:
        a task that already burned pool attempts keeps its count).
        Timeouts are not enforceable in-process; hangs injected here are
        plain sleeps.  Returns the number of retries consumed.
        """
        retries_used = 0
        for index in pending:
            while True:
                t0 = time.perf_counter()
                try:
                    inject_faults(index, attempts[index])
                    value = call(index)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:
                    attempts[index] += 1
                    kind = "crash" if isinstance(exc, InjectedCrash) else "error"
                    if attempts[index] > self.retries:
                        raise self._terminal_failure(kind, index, attempts[index], exc) from exc
                    retries_used += 1
                    time.sleep(_backoff_seconds(attempts[index]))
                    continue
                seconds[index] = time.perf_counter() - t0
                values[index] = value
                if on_result is not None:
                    on_result(index, value)
                break
        return retries_used

    def _pool_supervised(
        self,
        *,
        submit: Callable,
        serial_call: Callable[[int], object],
        context,
        n: int,
        values: list,
        seconds: list,
        attempts: list,
        on_result: Callable[[int, object], None] | None,
    ) -> int:
        """Supervise a pool until every task completes (or one is terminal).

        Sliding window of ``apply_async`` submissions (window = pool
        size), polled for completion, per-task wall-clock timeout and
        dead-child detection.  A hang or crash recycles the pool and
        requeues the unfinished work; more than ``MAX_POOL_RESTARTS``
        recycles abandons the pool and finishes serially.
        """
        done = [False] * n
        not_before = [0.0] * n  # earliest resubmission time (backoff)
        retries_used = 0
        pool_restarts = 0

        def register_failure(index: int, kind: str, cause=None) -> None:
            nonlocal retries_used
            attempts[index] += 1
            if attempts[index] > self.retries:
                raise self._terminal_failure(kind, index, attempts[index], cause)
            retries_used += 1
            not_before[index] = time.monotonic() + _backoff_seconds(attempts[index])

        while True:
            pending = [i for i in range(n) if not done[i]]
            if not pending:
                return retries_used
            if pool_restarts > MAX_POOL_RESTARTS:
                break  # pool is unhealthy — degrade to the serial tail
            processes = min(self.workers, len(pending))
            try:
                pool = context.Pool(processes=processes, initializer=_init_worker)
            except OSError:
                break  # cannot even fork — serial tail
            healthy = True
            try:
                children = list(getattr(pool, "_pool", []))
                queue: deque = deque(pending)
                in_flight: dict[int, tuple] = {}
                while queue or in_flight:
                    now = time.monotonic()
                    # refill the window, skipping tasks still backing off
                    scanned = 0
                    while queue and len(in_flight) < processes and scanned < len(queue):
                        index = queue[0]
                        if not_before[index] > now:
                            queue.rotate(-1)
                            scanned += 1
                            continue
                        queue.popleft()
                        scanned = 0
                        in_flight[index] = (submit(pool, index, attempts[index]), time.monotonic())
                    progressed = False
                    for index in list(in_flight):
                        result, _started = in_flight[index]
                        if not result.ready():
                            continue
                        del in_flight[index]
                        progressed = True
                        try:
                            _idx, value, secs = result.get()
                        except (KeyboardInterrupt, SystemExit):
                            raise
                        except Exception as exc:
                            kind = "crash" if isinstance(exc, InjectedCrash) else "error"
                            register_failure(index, kind, exc)
                        else:
                            values[index] = value
                            seconds[index] = secs
                            done[index] = True
                            if on_result is not None:
                                on_result(index, value)
                    if in_flight:
                        if any(child.exitcode is not None for child in children):
                            # a worker died mid-task; the oldest in-flight task
                            # is the likeliest victim — requeue everything
                            oldest = min(in_flight, key=lambda i: in_flight[i][1])
                            register_failure(oldest, "crash")
                            healthy = False
                        elif self.timeout is not None:
                            now = time.monotonic()
                            for index, (_result, started) in in_flight.items():
                                if now - started > self.timeout:
                                    register_failure(index, "timeout")
                                    healthy = False
                                    break
                    if not healthy:
                        break
                    if not progressed:
                        if not in_flight and queue:
                            wake = min(not_before[i] for i in queue)
                            time.sleep(max(_POLL_SECONDS, wake - time.monotonic()))
                        else:
                            time.sleep(_POLL_SECONDS)
            finally:
                pool.terminate()
                pool.join()
            if not healthy:
                pool_restarts += 1
        # graceful degradation: finish whatever is left on the serial path
        pending = [i for i in range(n) if not done[i]]
        retries_used += self._serial_complete(
            serial_call, pending, attempts, values, seconds, on_result
        )
        return retries_used
