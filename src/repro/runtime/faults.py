"""Deterministic fault injection for chaos-testing the sweep runtime.

Every recovery path in the runtime — retry-after-crash, timeout-and-
requeue of hung workers, quarantine-and-recompute of corrupt cache
entries — is provable only if faults can be *produced* on demand.  The
``REPRO_FAULTS`` environment knob injects them::

    REPRO_FAULTS="crash:0.05,hang:0.02,corrupt-cache:0.01"

``crash:p``
    With probability ``p`` a task attempt raises :class:`InjectedCrash`
    (the executor classifies it as a worker crash and retries).
``hang:p``
    With probability ``p`` a task attempt sleeps ``hang-seconds``
    (default 30), simulating a hung child; with ``REPRO_TIMEOUT`` set the
    supervisor detects it, recycles the pool and retries the task.
``corrupt-cache:p``
    With probability ``p`` a just-written :class:`~repro.runtime.cache.
    ResultCache` entry is bit-flipped on disk; the checksum layer must
    detect, quarantine and recompute it.
``drop-handshake:p``
    With probability ``p`` a session-layer handshake attempt is dropped
    before it reaches the air (:mod:`repro.protocol.session`); the
    re-sync retry budget must absorb the loss.
``desync:p``
    With probability ``p`` a session epoch starts with the receiver on a
    perturbed hop seed, forcing genuine PHY decode failures until the
    desync watchdogs fire and the handshake re-synchronizes.
``seed:n`` / ``hang-seconds:s``
    Fault-stream seed (default 0) and hang duration (default 30 s).

Each kind may appear at most once in a spec — a duplicated kind is a
configuration error and is rejected, not silently last-wins.

Draws follow the repo's substream discipline: every decision is an
independent ``child_rng(seed, "fault", kind, *labels)`` stream, so a
fault plan is a pure function of (seed, kind, task index) — the same
plan injects the same faults in every run, serial or pooled, which makes
chaos tests reproducible instead of flaky.

Crash/hang faults fire only on a task's *first* attempt: the harness
exists to prove the recovery paths, and confining injection to attempt
zero guarantees that a plan with any retry budget always completes —
with results bit-identical to a fault-free run.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.utils.rng import child_rng

__all__ = ["FaultPlan", "InjectedCrash", "inject_faults", "FAULT_KINDS", "DEFAULT_HANG_SECONDS"]

#: injectable fault kinds accepted in a ``REPRO_FAULTS`` spec
FAULT_KINDS = ("crash", "hang", "corrupt-cache", "drop-handshake", "desync")

#: how long an injected hang sleeps unless the spec overrides it
DEFAULT_HANG_SECONDS = 30.0


class InjectedCrash(RuntimeError):
    """The fault harness simulated a worker crash for this task attempt."""


@dataclass(frozen=True)
class FaultPlan:
    """A parsed ``REPRO_FAULTS`` spec: per-kind probabilities plus a seed.

    Attributes
    ----------
    crash, hang, corrupt_cache:
        Per-attempt / per-entry runtime injection probabilities in
        ``[0, 1]``.
    drop_handshake, desync:
        Protocol-level injection probabilities consumed by
        :mod:`repro.protocol.session` (per handshake round / per epoch).
    seed:
        Root seed of the fault decision streams.
    hang_seconds:
        Sleep duration of an injected hang.
    """

    crash: float = 0.0
    hang: float = 0.0
    corrupt_cache: float = 0.0
    drop_handshake: float = 0.0
    desync: float = 0.0
    seed: int = 0
    hang_seconds: float = DEFAULT_HANG_SECONDS

    @classmethod
    def parse(cls, spec: str, source: str = "REPRO_FAULTS") -> "FaultPlan":
        """Parse a ``kind:probability,...`` spec string.

        Raises ``ValueError`` naming ``source`` on unknown kinds, bad
        numbers, probabilities outside ``[0, 1]``, or a kind that appears
        more than once.
        """
        values: dict[str, float] = {}
        seen: set[str] = set()
        seed = 0
        hang_seconds = DEFAULT_HANG_SECONDS
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition(":")
            key = key.strip()
            raw = raw.strip()
            if not sep or not raw:
                raise ValueError(
                    f"{source}: entry {part!r} must be 'kind:value' "
                    f"(kinds: {', '.join(FAULT_KINDS)}, plus seed / hang-seconds)"
                )
            if key in seen:
                raise ValueError(
                    f"{source}: fault kind {key!r} appears more than once"
                )
            seen.add(key)
            if key == "seed":
                try:
                    seed = int(raw)
                except ValueError:
                    raise ValueError(f"{source}: seed must be an integer, got {raw!r}") from None
                continue
            if key == "hang-seconds":
                try:
                    hang_seconds = float(raw)
                except ValueError:
                    raise ValueError(
                        f"{source}: hang-seconds must be a number, got {raw!r}"
                    ) from None
                if hang_seconds <= 0:
                    raise ValueError(f"{source}: hang-seconds must be positive, got {raw!r}")
                continue
            if key not in FAULT_KINDS:
                raise ValueError(
                    f"{source}: unknown fault kind {key!r} (expected one of "
                    f"{', '.join(FAULT_KINDS)}, seed, hang-seconds)"
                )
            try:
                probability = float(raw)
            except ValueError:
                raise ValueError(
                    f"{source}: probability of {key!r} must be a number, got {raw!r}"
                ) from None
            if not 0.0 <= probability <= 1.0:
                raise ValueError(
                    f"{source}: probability of {key!r} must be in [0, 1], got {probability!r}"
                )
            values[key] = probability
        return cls(
            crash=values.get("crash", 0.0),
            hang=values.get("hang", 0.0),
            corrupt_cache=values.get("corrupt-cache", 0.0),
            drop_handshake=values.get("drop-handshake", 0.0),
            desync=values.get("desync", 0.0),
            seed=seed,
            hang_seconds=hang_seconds,
        )

    @classmethod
    def from_env(cls, env: str = "REPRO_FAULTS") -> "FaultPlan | None":
        """The active fault plan, or ``None`` when ``REPRO_FAULTS`` is unset."""
        raw = os.environ.get(env)
        if raw is None or not raw.strip():
            return None
        return cls.parse(raw, source=env)

    # -- deterministic decisions ----------------------------------------------

    def should(self, kind: str, *labels: str) -> bool:
        """Whether fault ``kind`` fires for the substream named by ``labels``.

        A pure function of ``(seed, kind, labels)`` — the same plan makes
        the same decision in any process, any number of times.  An
        unregistered ``kind`` raises a field-named ``ValueError`` (it
        would otherwise silently desynchronize caller and plan).
        """
        probabilities = {
            "crash": self.crash,
            "hang": self.hang,
            "corrupt-cache": self.corrupt_cache,
            "drop-handshake": self.drop_handshake,
            "desync": self.desync,
        }
        if kind not in probabilities:
            raise ValueError(
                f"FaultPlan.should: unknown fault kind {kind!r} "
                f"(expected one of {', '.join(FAULT_KINDS)})"
            )
        probability = probabilities[kind]
        if probability <= 0.0:
            return False
        return float(child_rng(self.seed, "fault", kind, *labels).random()) < probability

    def maybe_inject(self, index: int, attempt: int) -> None:
        """Inject a crash or hang into task ``index``'s attempt ``attempt``.

        Runs inside the worker (pool child or serial loop).  Only attempt
        zero is ever faulted, so any retry budget guarantees recovery.
        """
        if attempt > 0:
            return
        if self.should("crash", str(index)):
            raise InjectedCrash(f"injected crash fault for task {index}")
        if self.should("hang", str(index)):
            time.sleep(self.hang_seconds)

    def maybe_corrupt(self, path: str, digest: str) -> bool:
        """Bit-flip the cache entry at ``path`` if the plan says so.

        The decision is keyed by the entry ``digest`` (not by write
        count), so a given entry is either always or never corrupted by a
        given plan.  Returns whether corruption was applied.
        """
        if not self.should("corrupt-cache", digest):
            return False
        try:
            with open(path, "rb") as fh:
                data = bytearray(fh.read())
        except OSError:
            return False
        if not data:
            return False
        position = int(child_rng(self.seed, "fault", "corrupt-byte", digest).integers(len(data)))
        data[position] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(data))
        return True


def inject_faults(index: int, attempt: int) -> None:
    """Apply the ``REPRO_FAULTS`` crash/hang plan to one task attempt.

    Called by the executor's task wrappers in both the serial loop and
    pool children (children inherit the environment, so the plan is the
    same everywhere).  A no-op when ``REPRO_FAULTS`` is unset.
    """
    plan = FaultPlan.from_env()
    if plan is not None:
        plan.maybe_inject(index, attempt)
