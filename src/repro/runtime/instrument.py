"""Sweep instrumentation: wall times, throughput, pool utilization.

A :class:`SweepTiming` is attached to every :class:`~repro.analysis.sweep.
SweepResult` produced by ``run_sweep`` and rendered by the benchmark
harness's ``save_and_print`` and the ``repro-bhss bench`` subcommand, so
speedups (and regressions) are visible next to the tables they time.

A :class:`StageProfiler` accumulates *exclusive* wall-seconds per named
DSP stage.  The backend dispatch layer (:mod:`repro.backend`) opens one
``profiler.stage(name)`` scope around every kernel call while a profiler
is active, and ``repro-bhss bench --profile`` renders the result as the
per-stage, per-backend breakdown in ``BENCH_pr6.json``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = ["StageProfiler", "StageRecord", "SweepTiming"]


@dataclass
class StageRecord:
    """Accumulated timing of one named stage.

    Attributes
    ----------
    calls:
        Number of times the stage was entered.
    seconds:
        Total *exclusive* wall time: time spent inside the stage minus
        time spent in nested profiled stages (``modulate`` calling
        ``fft_convolve`` does not double-count the convolution).
    """

    calls: int = 0
    seconds: float = 0.0


class StageProfiler:
    """Accumulates exclusive wall-seconds per named stage.

    Stages may nest (``modulate`` dispatches ``fft_convolve`` internally);
    a stack of open scopes attributes each elapsed interval to exactly one
    stage, so the per-stage seconds sum to the profiled wall time instead
    of double-counting parents and children.  Not thread-safe — one
    profiler instruments one single-threaded workload.
    """

    def __init__(self) -> None:
        self._records: dict[str, StageRecord] = {}
        self._stack: list[list[float]] = []  # [start, nested_seconds] frames

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Scope one stage invocation; nested scopes subtract their time."""
        frame = [time.perf_counter(), 0.0]
        self._stack.append(frame)
        try:
            yield
        finally:
            self._stack.pop()
            elapsed = time.perf_counter() - frame[0]
            record = self._records.setdefault(name, StageRecord())
            record.calls += 1
            record.seconds += elapsed - frame[1]
            if self._stack:
                self._stack[-1][1] += elapsed

    @property
    def records(self) -> dict[str, StageRecord]:
        """Per-stage records, keyed by stage name."""
        return dict(self._records)

    @property
    def total_seconds(self) -> float:
        """Sum of exclusive seconds across all stages."""
        return float(sum(r.seconds for r in self._records.values()))

    def to_dict(self) -> dict:
        """JSON-friendly breakdown, stages sorted by descending seconds."""
        stages = {
            name: {"calls": rec.calls, "seconds": rec.seconds}
            for name, rec in sorted(
                self._records.items(), key=lambda item: item[1].seconds, reverse=True
            )
        }
        return {"stages": stages, "total_seconds": self.total_seconds}

    def summary(self) -> str:
        """One-line rendering: ``profile: fft_convolve 1.23s x840, ...``."""
        parts = [
            f"{name} {rec.seconds:.3f}s x{rec.calls}"
            for name, rec in sorted(
                self._records.items(), key=lambda item: item[1].seconds, reverse=True
            )
        ]
        return "profile: " + (", ".join(parts) if parts else "no stages recorded")


@dataclass(frozen=True)
class SweepTiming:
    """Timing telemetry of one sweep.

    Attributes
    ----------
    wall_seconds:
        End-to-end wall time of the whole sweep.
    point_seconds:
        Per-grid-point wall time, in grid order, measured inside the
        worker that evaluated the point.
    workers:
        Effective pool size (1 = serial).
    packets:
        Total packets simulated, when the caller knows it (enables
        packets/sec reporting).
    cache_hits:
        Points served from the on-disk result cache.
    batch_size:
        Packets per stacked call of the vectorized link path (``None``
        when unknown; ``0``/``1`` mean the serial per-packet path).
    retries:
        Task attempts beyond the first that the supervisor recovered
        (injected or real crashes, hangs and task errors).
    """

    wall_seconds: float
    point_seconds: tuple[float, ...]
    workers: int = 1
    packets: int | None = None
    cache_hits: int = 0
    batch_size: int | None = None
    retries: int = 0

    @property
    def num_points(self) -> int:
        """Number of grid points timed."""
        return len(self.point_seconds)

    @property
    def busy_seconds(self) -> float:
        """Total in-worker compute time across all points."""
        return float(sum(self.point_seconds))

    @property
    def raw_utilization(self) -> float:
        """``busy / (workers * wall)`` with no clamping.

        Values above 1.0 are physically impossible for a well-measured
        pool, so they indicate a measurement problem (overlapping timers,
        wrong worker count) — :attr:`utilization` hides that by clamping,
        this property surfaces it for diagnostics and tests.
        """
        if self.wall_seconds <= 0 or self.workers <= 0:
            return 0.0
        return self.busy_seconds / (self.workers * self.wall_seconds)

    @property
    def utilization(self) -> float:
        """Fraction of the pool's wall-time capacity spent computing.

        Clamped to ``[0, 1]`` for display; see :attr:`raw_utilization`
        for the unclamped diagnostic value.
        """
        return min(1.0, self.raw_utilization)

    @property
    def points_per_second(self) -> float:
        """Grid points evaluated per wall second."""
        return self.num_points / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def packets_per_second(self) -> float | None:
        """Packets simulated per wall second (``None`` if unknown)."""
        if self.packets is None or self.wall_seconds <= 0:
            return None
        return self.packets / self.wall_seconds

    def to_dict(self) -> dict:
        """Flat JSON-friendly dict (for BENCH files and sidecars)."""
        out = {
            "wall_seconds": self.wall_seconds,
            "point_seconds": list(self.point_seconds),
            "workers": self.workers,
            "num_points": self.num_points,
            "busy_seconds": self.busy_seconds,
            "utilization": self.utilization,
            "raw_utilization": self.raw_utilization,
            "points_per_second": self.points_per_second,
            "cache_hits": self.cache_hits,
        }
        if self.packets is not None:
            out["packets"] = self.packets
            out["packets_per_second"] = self.packets_per_second
        if self.batch_size is not None:
            out["batch_size"] = self.batch_size
        if self.retries:
            out["retries"] = self.retries
        return out

    def summary(self) -> str:
        """One-line human-readable rendering."""
        parts = [
            f"{self.num_points} points in {self.wall_seconds:.2f} s "
            f"({self.points_per_second:.2f} pts/s)",
            f"workers {self.workers}",
            f"utilization {100 * self.utilization:.0f}%",
        ]
        if self.packets is not None:
            parts.insert(1, f"{self.packets} packets ({self.packets_per_second:.1f} pkt/s)")
        if self.batch_size is not None:
            parts.append(f"batch {self.batch_size}" if self.batch_size > 1 else "serial packets")
        if self.cache_hits:
            parts.append(f"cache hits {self.cache_hits}/{self.num_points}")
        if self.retries:
            parts.append(f"retries {self.retries}")
        return "timing: " + ", ".join(parts)
