"""On-disk memoization of simulation results.

Packet-batch statistics are pure functions of (link configuration,
operating point, seed, packet budget) — *not* of the code revision — so a
benchmark re-run after an unrelated change can reuse yesterday's points.
The cache keys entries by a stable SHA-256 over a canonicalized view of
those inputs: dataclasses are flattened to ``{class, fields}`` mappings,
numpy arrays to lists, dict keys are sorted, so the hash is reproducible
across processes, platforms and insertion orders.

The cache is **opt-in**: it activates only when the ``REPRO_CACHE``
environment variable is set — to ``1`` for the default location
(``~/.cache/repro-bhss``) or to an explicit directory path.  Entries are
plain JSON files; invalidation is ``rm -rf`` of the directory (or
``ResultCache.clear()``).  Callers must only cache results whose inputs
the key fully captures — the link layer skips caching for stateful
jammers for exactly that reason.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile

import numpy as np

__all__ = ["ResultCache", "canonical", "stable_hash"]

_DEFAULT_ROOT = os.path.join("~", ".cache", "repro-bhss")
_OFF_VALUES = {"", "0", "off", "no", "false"}
_ON_VALUES = {"1", "on", "yes", "true"}


def canonical(obj):
    """Reduce ``obj`` to a JSON-able structure with a stable layout.

    Handles the configuration vocabulary of this library: dataclasses,
    numpy arrays/scalars, tuples/sets, callables (by qualified name), and
    arbitrary objects with a ``__dict__`` (by class name + fields).
    """
    if isinstance(obj, np.generic):
        obj = obj.item()  # numpy scalars subclass float/int — unify first
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return repr(obj)  # repr round-trips; avoids JSON NaN/Infinity quirks
    if isinstance(obj, bytes):
        return {"__bytes__": obj.hex()}
    if isinstance(obj, np.ndarray):
        return [canonical(v) for v in obj.tolist()]
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonical(v) for v in obj)
    if isinstance(obj, dict):
        return {str(k): canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: canonical(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
        return {"__dataclass__": type(obj).__name__, **fields}
    if callable(obj):
        return {"__callable__": getattr(obj, "__qualname__", repr(obj))}
    if hasattr(obj, "__dict__"):
        return {"__class__": type(obj).__name__, **canonical(vars(obj))}
    return {"__repr__": repr(obj)}


def stable_hash(obj) -> str:
    """Hex SHA-256 of the canonical JSON encoding of ``obj``."""
    text = json.dumps(canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


class ResultCache:
    """A directory of JSON result files addressed by stable key hashes.

    Parameters
    ----------
    root:
        Cache directory (created lazily on the first ``put``).
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.expanduser(root)
        self.hits = 0
        self.misses = 0

    @classmethod
    def from_env(cls, env: str = "REPRO_CACHE") -> "ResultCache | None":
        """The cache configured by ``REPRO_CACHE``, or ``None`` (disabled).

        Unset / ``0`` / ``off`` → disabled; ``1`` / ``on`` → the default
        directory; anything else is taken as the cache directory path.
        """
        raw = os.environ.get(env)
        if raw is None or raw.strip().lower() in _OFF_VALUES:
            return None
        if raw.strip().lower() in _ON_VALUES:
            return cls(_DEFAULT_ROOT)
        return cls(raw)

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], f"{digest}.json")

    def get(self, key) -> dict | None:
        """The cached dict for ``key``, or ``None`` on a miss."""
        path = self._path(stable_hash(key))
        try:
            with open(path) as fh:
                value = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key, value: dict) -> None:
        """Store a JSON-able dict under ``key`` (atomic rename)."""
        path = self._path(stable_hash(key))
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(value, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if not os.path.isdir(self.root):
            return removed
        for dirpath, _dirs, files in os.walk(self.root):
            for name in files:
                if name.endswith(".json"):
                    os.unlink(os.path.join(dirpath, name))
                    removed += 1
        return removed
