"""On-disk memoization of simulation results, with entry integrity.

Packet-batch statistics are pure functions of (link configuration,
operating point, seed, packet budget) — *not* of the code revision — so a
benchmark re-run after an unrelated change can reuse yesterday's points.
The cache keys entries by a stable SHA-256 over a canonicalized view of
those inputs: dataclasses are flattened to ``{class, fields}`` mappings,
numpy arrays to lists, dict keys are sorted, so the hash is reproducible
across processes, platforms and insertion orders.

The cache is **opt-in**: it activates only when the ``REPRO_CACHE``
environment variable is set — to ``1`` for the default location
(``~/.cache/repro-bhss``) or to an explicit directory path.  Entries are
JSON documents ``{"sha256": <hex>, "value": {...}}`` whose checksum covers
the canonical encoding of the value, so a truncated, bit-flipped or
half-written entry is *detected* rather than served:  a corrupt entry is
moved to ``<root>/quarantine/`` and reported as a miss, and the caller
recomputes — corruption can cost time, never correctness.  Pre-checksum
entries (plain JSON dicts) are still served as legacy hits.

Write failures (disk full, permissions) never abort a sweep: ``put`` is
best-effort and emits one ``RuntimeWarning`` per cache directory instead
of raising.  ``repro-bhss cache verify`` audits a cache directory and
``repro-bhss cache gc`` deletes corrupt/quarantined/stray files;
invalidation is still ``rm -rf`` (or :meth:`ResultCache.clear`).

Callers must only cache results whose inputs the key fully captures —
the link layer skips caching for stateful jammers for exactly that
reason.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import warnings

import numpy as np

from repro.runtime.faults import FaultPlan

__all__ = ["ResultCache", "CacheAudit", "canonical", "stable_hash"]

_DEFAULT_ROOT = os.path.join("~", ".cache", "repro-bhss")
_OFF_VALUES = {"", "0", "off", "no", "false"}
_ON_VALUES = {"1", "on", "yes", "true"}

#: name of the per-cache subdirectory corrupt entries are moved into
QUARANTINE_DIR = "quarantine"

#: cache roots that already warned about write/corruption problems
_WARNED_WRITE_ROOTS: set[str] = set()
_WARNED_CORRUPT_ROOTS: set[str] = set()

#: sentinel distinguishing "corrupt" from any decodable value
_CORRUPT = object()


def canonical(obj):
    """Reduce ``obj`` to a JSON-able structure with a stable layout.

    Handles the configuration vocabulary of this library: dataclasses,
    numpy arrays/scalars, tuples/sets, callables (by qualified name), and
    arbitrary objects with a ``__dict__`` (by class name + fields).
    """
    if isinstance(obj, np.generic):
        obj = obj.item()  # numpy scalars subclass float/int — unify first
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return repr(obj)  # repr round-trips; avoids JSON NaN/Infinity quirks
    if isinstance(obj, bytes):
        return {"__bytes__": obj.hex()}
    if isinstance(obj, np.ndarray):
        return [canonical(v) for v in obj.tolist()]
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonical(v) for v in obj)
    if isinstance(obj, dict):
        return {str(k): canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: canonical(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
        return {"__dataclass__": type(obj).__name__, **fields}
    if callable(obj):
        return {"__callable__": getattr(obj, "__qualname__", repr(obj))}
    if hasattr(obj, "__dict__"):
        return {"__class__": type(obj).__name__, **canonical(vars(obj))}
    return {"__repr__": repr(obj)}


def stable_hash(obj) -> str:
    """Hex SHA-256 of the canonical JSON encoding of ``obj``."""
    text = json.dumps(canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def _value_digest(value) -> str:
    """Integrity checksum of one cache entry's value payload."""
    text = json.dumps(value, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def _decode_entry(raw: bytes):
    """Decode one entry file's raw bytes.

    Returns ``(value, kind)`` where kind is ``"valid"`` (checksummed and
    intact) or ``"legacy"`` (pre-checksum plain dict), or ``(_CORRUPT,
    "corrupt")`` for anything undecodable, unparsable, mis-shaped or
    checksum-failed.  A dict that mentions ``sha256`` at all but is not
    an exact, intact wrapper is corrupt, not legacy — bit rot inside the
    wrapper must never demote an entry into the unchecksummed class.
    """
    try:
        data = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return _CORRUPT, "corrupt"
    if isinstance(data, dict) and set(data) == {"sha256", "value"}:
        if _value_digest(data["value"]) != data["sha256"]:
            return _CORRUPT, "corrupt"
        return data["value"], "valid"
    if isinstance(data, dict) and "sha256" not in data and "value" not in data:
        return data, "legacy"
    return _CORRUPT, "corrupt"


@dataclasses.dataclass(frozen=True)
class CacheAudit:
    """Result of a cache integrity pass (``verify``/``gc``).

    ``entries`` counts live entry files; ``valid``/``legacy``/``corrupt``
    partition them.  ``quarantined`` counts files already moved to the
    quarantine directory, ``removed`` counts files deleted by ``gc``.
    """

    entries: int = 0
    valid: int = 0
    legacy: int = 0
    corrupt: int = 0
    quarantined: int = 0
    removed: int = 0
    corrupt_paths: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """Whether the cache holds no corrupt entries."""
        return self.corrupt == 0


class ResultCache:
    """A directory of JSON result files addressed by stable key hashes.

    Parameters
    ----------
    root:
        Cache directory (created lazily on the first ``put``).
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.expanduser(root)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    @classmethod
    def from_env(cls, env: str = "REPRO_CACHE") -> "ResultCache | None":
        """The cache configured by ``REPRO_CACHE``, or ``None`` (disabled).

        Unset / ``0`` / ``off`` → disabled; ``1`` / ``on`` → the default
        directory; anything else is taken as the cache directory path.
        """
        raw = os.environ.get(env)
        if raw is None or raw.strip().lower() in _OFF_VALUES:
            return None
        if raw.strip().lower() in _ON_VALUES:
            return cls(_DEFAULT_ROOT)
        return cls(raw)

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], f"{digest}.json")

    def _quarantine_dir(self) -> str:
        return os.path.join(self.root, QUARANTINE_DIR)

    def _quarantine(self, path: str) -> None:
        """Move a corrupt entry aside so it is inspectable but never served."""
        target = os.path.join(self._quarantine_dir(), os.path.basename(path))
        try:
            os.makedirs(self._quarantine_dir(), exist_ok=True)
            os.replace(path, target)
        except OSError:
            # cannot even move it — drop it so it is not served again
            try:
                os.unlink(path)
            except OSError:
                pass
        if self.root not in _WARNED_CORRUPT_ROOTS:
            _WARNED_CORRUPT_ROOTS.add(self.root)
            warnings.warn(
                f"corrupt cache entry detected under {self.root!r}; quarantined and "
                "recomputing (run `repro-bhss cache verify` / `cache gc` to audit)",
                RuntimeWarning,
                stacklevel=3,
            )

    def get(self, key) -> dict | None:
        """The cached dict for ``key``, or ``None`` on a miss.

        A corrupt entry (unparsable, mis-shaped, or failing its checksum)
        is quarantined and reported as a miss, so the caller transparently
        recomputes instead of crashing or consuming bad data.
        """
        path = self._path(stable_hash(key))
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except OSError:
            self.misses += 1
            return None
        value, kind = _decode_entry(raw)
        if kind == "corrupt":
            self._quarantine(path)
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key, value: dict) -> None:
        """Store a JSON-able dict under ``key`` (atomic rename, checksummed).

        Best-effort: filesystem failures (disk full, permissions, a root
        that is not a directory) emit one ``RuntimeWarning`` per cache
        directory and leave the sweep running uncached.  A ``value`` that
        is not JSON-able still raises ``TypeError`` — that is a caller
        bug, not an environment fault.
        """
        digest = stable_hash(key)
        path = self._path(digest)
        document = {"sha256": _value_digest(value), "value": value}
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        except OSError as exc:
            self._warn_write_failure(exc)
            return
        try:
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(document, fh)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError as exc:
            self._warn_write_failure(exc)
            return
        plan = FaultPlan.from_env()
        if plan is not None:
            plan.maybe_corrupt(path, digest)

    def _warn_write_failure(self, exc: OSError) -> None:
        if self.root in _WARNED_WRITE_ROOTS:
            return
        _WARNED_WRITE_ROOTS.add(self.root)
        warnings.warn(
            f"cannot write result cache under {self.root!r}: {exc} "
            "(caching disabled for this run; results are unaffected)",
            RuntimeWarning,
            stacklevel=3,
        )

    # -- integrity audit ------------------------------------------------------

    def _entry_files(self) -> list[str]:
        """Live entry files (quarantine excluded), in sorted order."""
        qdir = self._quarantine_dir()
        out: list[str] = []
        if not os.path.isdir(self.root):
            return out
        for dirpath, dirs, files in os.walk(self.root):
            if os.path.abspath(dirpath) == os.path.abspath(qdir):
                dirs[:] = []
                continue
            for name in files:
                if name.endswith(".json"):
                    out.append(os.path.join(dirpath, name))
        return sorted(out)

    def _quarantined_files(self) -> list[str]:
        qdir = self._quarantine_dir()
        if not os.path.isdir(qdir):
            return []
        return sorted(
            os.path.join(qdir, name)
            for name in os.listdir(qdir)
            if os.path.isfile(os.path.join(qdir, name))
        )

    def _stray_tmp_files(self) -> list[str]:
        out: list[str] = []
        if not os.path.isdir(self.root):
            return out
        for dirpath, _dirs, files in os.walk(self.root):
            for name in files:
                if name.endswith(".tmp"):
                    out.append(os.path.join(dirpath, name))
        return sorted(out)

    def verify(self) -> CacheAudit:
        """Read-only integrity audit of every entry in the cache.

        Classifies each entry as valid (checksummed, intact), legacy
        (pre-checksum format) or corrupt; corrupt paths are listed so the
        CLI can print them.  Nothing is modified — use :meth:`gc` to
        delete corrupt and quarantined files.
        """
        valid = legacy = 0
        corrupt_paths: list[str] = []
        for path in self._entry_files():
            try:
                with open(path, "rb") as fh:
                    raw = fh.read()
            except OSError:
                corrupt_paths.append(path)
                continue
            _value, kind = _decode_entry(raw)
            if kind == "valid":
                valid += 1
            elif kind == "legacy":
                legacy += 1
            else:
                corrupt_paths.append(path)
        return CacheAudit(
            entries=valid + legacy + len(corrupt_paths),
            valid=valid,
            legacy=legacy,
            corrupt=len(corrupt_paths),
            quarantined=len(self._quarantined_files()),
            corrupt_paths=tuple(corrupt_paths),
        )

    def gc(self) -> CacheAudit:
        """Delete corrupt entries, quarantined files and stray temp files.

        Valid and legacy entries are kept.  Returns the post-collection
        audit with ``removed`` counting every deleted file.
        """
        removed = 0
        before = self.verify()
        for path in before.corrupt_paths + tuple(
            self._quarantined_files() + self._stray_tmp_files()
        ):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        after = self.verify()
        return dataclasses.replace(after, removed=removed)

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if not os.path.isdir(self.root):
            return removed
        for dirpath, _dirs, files in os.walk(self.root):
            for name in files:
                if name.endswith(".json"):
                    os.unlink(os.path.join(dirpath, name))
                    removed += 1
        return removed
