"""Network-level aggregate metrics."""

from __future__ import annotations

from typing import Sequence

__all__ = ["jain_fairness"]


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)`` over ``values``.

    1.0 when every link gets the same share, ``1/n`` when one link takes
    everything.  Values must be non-negative (throughputs); all-zero
    input — every link equally starved — is defined as 1.0, the
    degenerate equal-share case.
    """
    xs = [float(v) for v in values]
    if not xs:
        raise ValueError("jain_fairness: requires at least one value")
    for i, v in enumerate(xs):
        if v < 0:
            raise ValueError(f"jain_fairness: values[{i}] is negative ({v})")
    total = sum(xs)
    if total == 0.0:
        return 1.0
    return total * total / (len(xs) * sum(v * v for v in xs))
