"""Network-scale BHSS: N links superposed in one shared-spectrum medium.

The :class:`NetworkSpec` JSON layer, the per-link
:class:`NetworkSimulator`, and the :func:`run_network` driver that fans
links out over the parallel runtime with spec-hash caching and
checkpoint/resume — plus the aggregate outputs (network throughput and
:func:`jain_fairness`) behind the fairness-vs-jammer-count figures.
"""

from repro.network.metrics import jain_fairness
from repro.network.runner import (
    JAMMER_SWEEP_COLUMNS,
    NETWORK_COLUMNS,
    NetworkResult,
    evaluate_network_link,
    jammer_count_sweep,
    run_network,
)
from repro.network.simulator import NetworkSimulator
from repro.network.spec import LinkSpec, NetworkError, NetworkSpec

__all__ = [
    "JAMMER_SWEEP_COLUMNS",
    "NETWORK_COLUMNS",
    "LinkSpec",
    "NetworkError",
    "NetworkResult",
    "NetworkSimulator",
    "NetworkSpec",
    "evaluate_network_link",
    "jain_fairness",
    "jammer_count_sweep",
    "run_network",
]
