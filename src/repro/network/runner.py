"""Spec-driven network execution over the parallel runtime.

:func:`run_network` fans a :class:`NetworkSpec`'s links out over the
:class:`~repro.runtime.executor.ParallelExecutor` through the same spec
transport, cache, and checkpoint machinery as scenario sweeps: the only
things shipped to workers are the network's ``to_dict()`` payload and
link indices, every worker rebuilds its simulator from the spec, results
are memoized per link under the canonical spec hash, and completed links
checkpoint incrementally so an interrupted run resumes bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.core.link import LinkStats
from repro.network.metrics import jain_fairness
from repro.network.spec import NetworkSpec
from repro.runtime import (
    ParallelExecutor,
    ResultCache,
    SweepTiming,
    make_checkpoint,
    resolve_batch,
    stable_hash,
)

if TYPE_CHECKING:
    from repro.analysis.sweep import SweepResult

__all__ = [
    "NETWORK_COLUMNS",
    "JAMMER_SWEEP_COLUMNS",
    "NetworkResult",
    "evaluate_network_link",
    "jammer_count_sweep",
    "run_network",
]

#: column order of a per-link network result table.
NETWORK_COLUMNS = ("link", "snr_db", "sjr_db", "per", "per_lo", "per_hi", "ber", "throughput_bps")

#: column order of the fairness-vs-jammer-count sweep.
JAMMER_SWEEP_COLUMNS = ("num_jammers", "network_throughput_bps", "fairness", "mean_per")


def _cache_token(cache: "ResultCache | str | bool | None") -> "str | bool | None":
    """Flatten a cache argument to picklable data for the spec payload."""
    if cache is None or cache is False:
        return cache
    if isinstance(cache, ResultCache):
        return cache.root
    return str(cache)


def _stats_record(name: str, link_snr_db: float, link_sjr_db: float, stats: LinkStats) -> dict:
    per_lo, per_hi = stats.per_confidence_interval()
    return {
        "link": name,
        "snr_db": float(link_snr_db),
        "sjr_db": float(link_sjr_db),
        "per": stats.packet_error_rate,
        "per_lo": per_lo,
        "per_hi": per_hi,
        "ber": stats.bit_error_rate,
        "throughput_bps": stats.throughput_bps,
        # The raw counters, so callers (and the equivalence wall) can
        # reconstruct the exact LinkStats from a record or cache entry.
        "stats": {
            "num_packets": stats.num_packets,
            "num_accepted": stats.num_accepted,
            "total_bits": stats.total_bits,
            "bit_errors": stats.bit_errors,
            "data_rate_bps": stats.data_rate_bps,
            "filter_usage": dict(stats.filter_usage),
        },
    }


def evaluate_network_link(payload: dict, index: int) -> dict:
    """Evaluate one link of a network spec.

    This is the module-level runner of the spec transport: ``payload`` is
    plain data — ``{"network": NetworkSpec.to_dict(), "cache": None |
    False | <root path>}`` — and the simulator is rebuilt from it, so the
    call is a pure function of its arguments with no fork-inherited
    state.  Per-link results are memoized under the canonical network
    spec hash; unlike the single-link batch cache this needs no
    statefulness guard, because each call rebuilds its jammer from the
    spec and walks the packets in order.
    """
    from repro.network.simulator import NetworkSimulator

    spec = NetworkSpec.from_dict(payload["network"])
    token = payload.get("cache")
    if token is None:
        store = ResultCache.from_env()
    elif token is False:
        store = None
    elif isinstance(token, str):
        store = ResultCache(token)
    else:
        store = token
    index = int(index)
    key = None
    if store is not None:
        key = {
            "kind": "NetworkSimulator.run_link",
            "network": spec.to_dict(),
            "link": index,
        }
        hit = store.get(key)
        if hit is not None:
            return dict(hit)
    stats = NetworkSimulator(spec).run_link(index)
    link = spec.links[index]
    record = _stats_record(link.name, link.snr_db, link.sjr_db, stats)
    if key is not None and store is not None:
        store.put(key, record)
    return record


@dataclass
class NetworkResult:
    """Per-link records plus the network-level aggregates.

    ``records`` holds one :func:`evaluate_network_link` record per link,
    in link order; ``timing`` carries the fan-out telemetry (it does not
    participate in equality).
    """

    spec: NetworkSpec
    records: list[dict] = field(default_factory=list)
    timing: SweepTiming | None = field(default=None, repr=False, compare=False)

    def link_stats(self, name: str) -> LinkStats:
        """Reconstruct the exact :class:`LinkStats` of link ``name``."""
        for record in self.records:
            if record["link"] == name:
                return LinkStats(**record["stats"])
        raise KeyError(f"no link named {name!r} in this result")

    @property
    def throughputs_bps(self) -> list[float]:
        """Per-link goodput, in link order."""
        return [float(r["throughput_bps"]) for r in self.records]

    @property
    def network_throughput_bps(self) -> float:
        """Summed goodput of every link."""
        return float(sum(self.throughputs_bps))

    @property
    def fairness(self) -> float:
        """Jain fairness index over the per-link goodputs."""
        return jain_fairness(self.throughputs_bps)

    def aggregates(self) -> dict:
        """The network-level summary row."""
        n = len(self.records)
        return {
            "num_links": n,
            "num_jammers": self.spec.num_jammers,
            "network_throughput_bps": self.network_throughput_bps,
            "fairness": self.fairness,
            "mean_per": float(sum(r["per"] for r in self.records)) / n,
            "mean_ber": float(sum(r["ber"] for r in self.records)) / n,
        }

    def to_sweep_result(self) -> "SweepResult":
        """The per-link table as a tidy :class:`SweepResult`."""
        from repro.analysis.sweep import SweepResult

        out = SweepResult(columns=NETWORK_COLUMNS)
        for record in self.records:
            out.add(**{c: record[c] for c in NETWORK_COLUMNS})
        out.timing = self.timing
        return out


def run_network(
    spec: NetworkSpec,
    *,
    executor: ParallelExecutor | None = None,
    cache: "ResultCache | str | bool | None" = None,
    checkpoint: "str | bool | None" = None,
) -> NetworkResult:
    """Evaluate every link of a network into a :class:`NetworkResult`.

    ``executor`` defaults to the ``REPRO_WORKERS``-configured pool
    (serial when unset); links are merged in link order either way, and a
    parallel run is bit-identical to a serial one.  ``cache`` and
    ``checkpoint`` follow the :func:`repro.scenario.runner.run_scenario`
    conventions (``REPRO_CACHE`` / ``REPRO_CHECKPOINT`` when ``None``,
    ``False`` forces off); completed links are persisted incrementally
    under the network's canonical spec hash, so a rerun of the *same*
    network recomputes only unfinished links.
    """
    ex = executor if executor is not None else ParallelExecutor.from_env()
    spec_dict = spec.to_dict()
    payload = {"network": spec_dict, "cache": _cache_token(cache)}
    total = spec.num_links
    ckpt = make_checkpoint(checkpoint, stable_hash({"network": spec_dict}), total)
    loaded: dict[int, Any] = {} if ckpt is None else ckpt.load()
    pending = [i for i in range(total) if not isinstance(loaded.get(i), dict)]
    records: list[dict | None] = [loaded[i] if i not in pending else None for i in range(total)]
    seconds = [0.0] * total
    wall = 0.0
    workers = 1
    retries = 0
    if pending:
        on_result: Callable[[int, object], None] | None = None
        if ckpt is not None:
            active = ckpt

            def _persist(local_index: int, value: object) -> None:
                active.record(pending[local_index], value)

            on_result = _persist
        try:
            report = ex.map_spec(
                evaluate_network_link,
                payload,
                pending,
                on_result=on_result,
            )
        except BaseException:
            # Keep whatever finished: an interrupted run resumes from here.
            if ckpt is not None:
                ckpt.flush()
            raise
        for index, value, secs in zip(pending, report.values, report.seconds):
            records[index] = value
            seconds[index] = secs
        wall = report.wall_seconds
        workers = report.workers
        retries = report.retries
    if ckpt is not None:
        ckpt.complete()
    final: list[dict] = []
    for record in records:
        assert record is not None  # every index is either loaded or pending
        final.append(record)
    timing = SweepTiming(
        wall_seconds=wall,
        point_seconds=tuple(seconds),
        workers=workers,
        packets=spec.packets * total,
        batch_size=resolve_batch(),
        retries=retries,
    )
    return NetworkResult(spec=spec, records=final, timing=timing)


def jammer_count_sweep(
    spec: NetworkSpec,
    counts: Sequence[int] | None = None,
    *,
    executor: ParallelExecutor | None = None,
    cache: "ResultCache | str | bool | None" = None,
    checkpoint: "str | bool | None" = None,
) -> "SweepResult":
    """Network throughput and Jain fairness vs the number of active jammers.

    For each ``count`` (default ``0..num_jammers``) the spec's first
    ``count`` jammed links keep their jammer and the rest are silenced
    (:meth:`NetworkSpec.with_active_jammers`); everything else — seeds,
    coupling, operating points — is held fixed, so the sweep isolates
    the jammer population's effect on the aggregate network.
    """
    from repro.analysis.sweep import SweepResult

    if counts is None:
        counts = list(range(spec.num_jammers + 1))
    result = SweepResult(columns=JAMMER_SWEEP_COLUMNS)
    for count in counts:
        derived = spec.with_active_jammers(int(count))
        net = run_network(derived, executor=executor, cache=cache, checkpoint=checkpoint)
        agg = net.aggregates()
        result.add(
            num_jammers=int(count),
            network_throughput_bps=agg["network_throughput_bps"],
            fairness=agg["fairness"],
            mean_per=agg["mean_per"],
        )
    return result
