"""Per-link simulation of a shared-spectrum BHSS network.

Each link's receiver sees the superposition of its own transmission,
the coupled neighbours' transmissions, its personal jammer, and thermal
noise — all through :meth:`Medium.superpose`, calibrated against the
link's own nominal signal power.

The bit-identity contract (the hard equivalence wall of the network
subsystem, gated by ``tests/test_network.py``): packet ``k`` of link
``i`` draws from ``child_rng(links[i].seed, "packet", str(k))``, the
jammer waveform is drawn first, then the medium noise — exactly
:meth:`LinkSimulator.run_packets`'s contract.  Cross-link interference
is purely deterministic (TX synthesis consumes no randomness) and is
superposed *before* the jammer in a float-addition order that collapses
to the classic signal + jammer + noise sum when a link has no coupled
neighbours.  An N=1 network therefore reproduces
``LinkSimulator.run_packets`` bit-identically at every seed.
"""

from __future__ import annotations

from repro.channel.link_medium import Medium, MediumSource
from repro.core.link import LinkStats
from repro.core.paths import RxPath, TxPath, draw_jammer_wave
from repro.network.spec import NetworkSpec
from repro.utils.rng import child_rng

__all__ = ["NetworkSimulator"]


class NetworkSimulator:
    """Runs every link of a :class:`NetworkSpec` through the shared medium.

    Links are mutually independent given the spec (interference is
    re-synthesized deterministically per victim), so ``run_link`` calls
    can execute in any order — or on different workers — and produce
    identical results; jammer state is rebuilt fresh per call, so even
    stateful jammers are order-free at the link level.
    """

    def __init__(self, spec: NetworkSpec) -> None:
        self.spec = spec
        # One TxPath per link, shared between the "own signal" and
        # "interference at a neighbour" roles — synthesis is stateless.
        self._tx_paths = tuple(TxPath(link.config) for link in spec.links)

    def run_link(self, index: int) -> LinkStats:
        """Simulate all packets of link ``index``; aggregate statistics."""
        if not 0 <= index < self.spec.num_links:
            raise IndexError(f"link index {index} out of range (network has {self.spec.num_links})")
        link = self.spec.links[index]
        tx = self._tx_paths[index]
        rx = RxPath(link.config)
        medium = Medium(link.config.sample_rate)
        jammer = link.build_jammer()
        peers = self.spec.interferers(index)
        coupling = self.spec.coupling_db

        accepted = 0
        bit_errors = 0
        total_bits = 0
        usage: dict[str, int] = {}
        for k in range(self.spec.packets):
            gen = child_rng(link.seed, "packet", str(k))
            packet, tx_wave = tx.emit(k)
            jam_wave = draw_jammer_wave(jammer, packet, link.sjr_db, gen)
            sources: list[MediumSource] = []
            for j in peers:
                assert coupling is not None  # peers is empty otherwise
                power_db = coupling[index][j]
                assert power_db is not None  # interferers() filtered nulls
                sources.append(
                    MediumSource(
                        samples=self._tx_paths[j].synthesize(k).waveform,
                        power_db=power_db,
                        delay_samples=self.spec.cross_delay(index, j),
                        label=f"links[{j}]",
                        kind="interference",
                    )
                )
            if jam_wave is not None:
                sources.append(
                    MediumSource(
                        samples=jam_wave,
                        power_db=-float(link.sjr_db),
                        delay_samples=link.jammer_delay_samples,
                        label="jammer",
                        kind="jammer",
                    )
                )
            block = medium.superpose(
                tx_wave, snr_db=link.snr_db, sources=sources, rng=gen
            )
            outcome = rx.receive_packet(packet, block.samples, k)
            accepted += int(outcome.accepted)
            bit_errors += outcome.bit_errors
            total_bits += outcome.total_bits
            for kind, count in outcome.receive.filter_usage().items():
                usage[kind] = usage.get(kind, 0) + count
        return LinkStats(
            num_packets=self.spec.packets,
            num_accepted=accepted,
            total_bits=total_bits,
            bit_errors=bit_errors,
            data_rate_bps=tx.data_rate_bps(),
            filter_usage=usage,
        )

    def run(self) -> list[LinkStats]:
        """Simulate every link serially, in link order."""
        return [self.run_link(i) for i in range(self.spec.num_links)]
