"""Serializable N-link network specifications.

A network file looks like::

    {
      "name": "mesh4",
      "description": "4 uncoordinated BHSS links, ring coupling, 2 jammers",
      "links": [
        {"name": "a", "config": {"seed": 1}, "seed": 101, "snr_db": 15.0,
         "sjr_db": -10.0, "jammer": {"type": "tone"}},
        {"name": "b", "config": {"seed": 2}, "seed": 102}
      ],
      "coupling_db": [[null, -18.0], [-18.0, null]],
      "delay_samples": [[0, 25], [25, 0]],
      "packets": 10
    }

``links[i]`` describes one transmitter/receiver pair: its PHY
configuration (hop pattern, pre-shared schedule seed — the
:class:`~repro.core.config.BHSSConfig` spec layout), its *run* seed (the
root of the per-packet ``child_rng(seed, "packet", k)`` substreams), its
operating point, and its personal jammer.  ``coupling_db[i][j]`` is the
received power of link ``j``'s transmission at link ``i``'s receiver in
dB relative to link ``i``'s nominal signal power (``null`` = no
coupling; the diagonal must be ``null``).  ``delay_samples[i][j]`` is
the cross-link propagation delay in samples.

Validation failures raise :class:`NetworkError` naming the offending
field (``"links[2].seed: ..."`` style).  Per-link run seeds must be
pairwise distinct — that is what guarantees, by construction, that no
two links ever share an RNG substream.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from typing import Any

from repro.core.config import BHSSConfig
from repro.jamming.base import Jammer
from repro.jamming.registry import jammer_from_spec

__all__ = ["LinkSpec", "NetworkError", "NetworkSpec"]

#: the jammer spec meaning "this link is not attacked"
NO_JAMMER: dict[str, Any] = {"type": "none"}


class NetworkError(ValueError):
    """A network spec failed validation; the message names the field."""


def _require_int(value: object, path: str, minimum: int | None = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise NetworkError(f"{path}: expected an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise NetworkError(f"{path}: must be >= {minimum}, got {value}")
    return int(value)


def _require_number(value: object, path: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise NetworkError(f"{path}: expected a number, got {value!r}")
    return float(value)


@dataclass(frozen=True)
class LinkSpec:
    """One transmitter/receiver pair of a shared-spectrum network.

    Attributes
    ----------
    name:
        Identifier used in per-link results and error messages.
    config:
        The link's PHY configuration (its ``seed`` is the pre-shared hop
        schedule seed; uncoordinated links should use distinct ones).
    seed:
        Run seed — the root of the per-packet RNG substreams, exactly as
        :meth:`LinkSimulator.run_packets`'s ``seed``.  Must be unique
        across the network's links.
    snr_db, sjr_db:
        The link's operating point against its own noise floor / jammer.
    jammer:
        Registry spec of the jammer attacking this link
        (``{"type": "none"}`` = unjammed; see
        :mod:`repro.jamming.registry`).
    jammer_delay_samples:
        Reaction delay of this link's jammer in samples.
    """

    name: str
    config: BHSSConfig = field(default_factory=BHSSConfig.paper_default)
    seed: int = 0
    snr_db: float = 15.0
    sjr_db: float = -10.0
    jammer: dict = field(default_factory=lambda: dict(NO_JAMMER))
    jammer_delay_samples: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise NetworkError("link name: must be a non-empty string")
        path = f"link {self.name!r}"
        if not isinstance(self.config, BHSSConfig):
            raise NetworkError(f"{path}.config: must be a BHSSConfig (use from_dict for specs)")
        _require_int(self.seed, f"{path}.seed")
        object.__setattr__(self, "snr_db", _require_number(self.snr_db, f"{path}.snr_db"))
        object.__setattr__(self, "sjr_db", _require_number(self.sjr_db, f"{path}.sjr_db"))
        if not isinstance(self.jammer, dict):
            raise NetworkError(f"{path}.jammer: must be a registry spec mapping")
        _require_int(self.jammer_delay_samples, f"{path}.jammer_delay_samples", minimum=0)

    @property
    def jammed(self) -> bool:
        """Whether this link carries a real jammer spec."""
        return str(self.jammer.get("type", "none")).lower() != "none"

    def build_jammer(self) -> Jammer:
        """The link's jammer instance (fresh state every call)."""
        try:
            return jammer_from_spec(self.jammer, sample_rate=self.config.sample_rate)
        except ValueError as exc:
            raise NetworkError(f"link {self.name!r}.jammer: {exc}") from None

    def without_jammer(self) -> "LinkSpec":
        """A copy of this link with its jammer removed."""
        return replace(self, jammer=dict(NO_JAMMER))

    def to_dict(self) -> dict:
        """Lossless JSON-able spec; :meth:`from_dict` inverts it."""
        return {
            "name": self.name,
            "config": self.config.to_dict(),
            "seed": int(self.seed),
            "snr_db": float(self.snr_db),
            "sjr_db": float(self.sjr_db),
            "jammer": self.jammer,
            "jammer_delay_samples": int(self.jammer_delay_samples),
        }

    @classmethod
    def from_dict(cls, data: object, path: str = "link") -> "LinkSpec":
        """Rebuild and validate a link spec from :meth:`to_dict` output."""
        if not isinstance(data, dict):
            raise NetworkError(f"{path}: must be a mapping, got {type(data).__name__}")
        known = {
            "name", "config", "seed", "snr_db", "sjr_db",
            "jammer", "jammer_delay_samples",
        }
        unknown = set(data) - known
        if unknown:
            raise NetworkError(f"{path}: unknown field(s): {sorted(unknown)}")
        if "name" not in data:
            raise NetworkError(f"{path}.name: field is required")
        try:
            config = BHSSConfig.from_dict(data.get("config", {}))
        except ValueError as exc:
            raise NetworkError(f"{path}.config: {exc}") from None
        kwargs: dict[str, Any] = {"name": data["name"], "config": config}
        for key in ("seed", "snr_db", "sjr_db", "jammer", "jammer_delay_samples"):
            if key in data:
                kwargs[key] = data[key]
        return cls(**kwargs)


def _validated_matrix(
    raw: object,
    n: int,
    path: str,
    entry: Any,
) -> tuple[tuple[Any, ...], ...]:
    """An ``n x n`` matrix with per-entry validation via ``entry(v, path)``."""
    if not isinstance(raw, (list, tuple)) or len(raw) != n:
        raise NetworkError(f"{path}: must be a {n}x{n} matrix (one row per link)")
    rows = []
    for i, row in enumerate(raw):
        if not isinstance(row, (list, tuple)) or len(row) != n:
            raise NetworkError(f"{path}[{i}]: must be a row of {n} entries")
        rows.append(tuple(entry(v, f"{path}[{i}][{j}]", i == j) for j, v in enumerate(row)))
    return tuple(rows)


def _coupling_entry(value: object, path: str, diagonal: bool) -> float | None:
    if diagonal:
        if value is not None:
            raise NetworkError(f"{path}: diagonal must be null (a link does not jam itself)")
        return None
    if value is None:
        return None
    return _require_number(value, path)


def _delay_entry(value: object, path: str, diagonal: bool) -> int:
    out = _require_int(value, path, minimum=0)
    if diagonal and out != 0:
        raise NetworkError(f"{path}: diagonal delay must be 0")
    return out


@dataclass(frozen=True)
class NetworkSpec:
    """N BHSS links superposed in one shared-spectrum medium.

    Attributes
    ----------
    name:
        Identifier used in reports, file names and cache keys.
    links:
        The per-link specs.  Link names and run seeds must be unique,
        and every link must share one medium sample rate.
    coupling_db:
        Cross-link interference matrix: ``coupling_db[i][j]`` is the
        received power of link ``j``'s transmission at link ``i``'s
        receiver in dB relative to link ``i``'s nominal signal power
        (``None`` = no coupling).  ``None`` for the whole matrix means
        fully isolated links.
    delay_samples:
        Optional cross-link propagation delay matrix in samples
        (defaults to zero everywhere).
    packets:
        Packet budget per link.
    description:
        Free-text note carried through the JSON file.
    """

    name: str
    links: tuple[LinkSpec, ...] = ()
    coupling_db: "tuple[tuple[float | None, ...], ...] | None" = None
    delay_samples: "tuple[tuple[int, ...], ...] | None" = None
    packets: int = 20
    description: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise NetworkError("name: must be a non-empty string")
        links = tuple(self.links)
        object.__setattr__(self, "links", links)
        if not links:
            raise NetworkError("links: at least one link is required")
        for i, link in enumerate(links):
            if not isinstance(link, LinkSpec):
                raise NetworkError(f"links[{i}]: must be a LinkSpec (use from_dict for specs)")
        names = [link.name for link in links]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise NetworkError(f"links: duplicate link name(s): {dupes}")
        seeds: dict[int, str] = {}
        for i, link in enumerate(links):
            if link.seed in seeds:
                raise NetworkError(
                    f"links[{i}].seed: {link.seed} duplicates link {seeds[link.seed]!r}'s — "
                    "per-link run seeds must be distinct so RNG substreams never collide"
                )
            seeds[link.seed] = link.name
        rates = {link.config.sample_rate for link in links}
        if len(rates) > 1:
            raise NetworkError(
                "links: every link must share one medium sample rate, got "
                f"{sorted(rates)}"
            )
        n = len(links)
        if self.coupling_db is not None:
            object.__setattr__(
                self,
                "coupling_db",
                _validated_matrix(self.coupling_db, n, "coupling_db", _coupling_entry),
            )
        if self.delay_samples is not None:
            object.__setattr__(
                self,
                "delay_samples",
                _validated_matrix(self.delay_samples, n, "delay_samples", _delay_entry),
            )
        _require_int(self.packets, "packets", minimum=1)
        if not isinstance(self.description, str):
            raise NetworkError("description: must be a string")

    # -- topology queries -----------------------------------------------------

    @property
    def num_links(self) -> int:
        """Number of links in the network."""
        return len(self.links)

    @property
    def num_jammers(self) -> int:
        """Number of links carrying a real (non-``"none"``) jammer."""
        return sum(1 for link in self.links if link.jammed)

    def interferers(self, index: int) -> tuple[int, ...]:
        """Indices of the links coupled into link ``index``'s receiver."""
        if self.coupling_db is None:
            return ()
        row = self.coupling_db[index]
        return tuple(j for j, value in enumerate(row) if value is not None)

    def cross_delay(self, index: int, other: int) -> int:
        """Propagation delay of link ``other``'s signal at link ``index``."""
        if self.delay_samples is None:
            return 0
        return int(self.delay_samples[index][other])

    def with_active_jammers(self, count: int) -> "NetworkSpec":
        """A copy where only the first ``count`` jammed links stay jammed.

        The knob of the fairness-vs-jammer-count sweep: link order,
        seeds, coupling, and operating points are untouched, so the only
        difference between two counts is which jammers transmit.
        """
        count = _require_int(count, "count", minimum=0)
        kept = 0
        links = []
        for link in self.links:
            if link.jammed:
                kept += 1
                links.append(link if kept <= count else link.without_jammer())
            else:
                links.append(link)
        return replace(self, links=tuple(links))

    def validate(self) -> "NetworkSpec":
        """Deep-check the jammer specs (builds each once); returns self."""
        for link in self.links:
            link.build_jammer()
        return self

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """Lossless JSON-able spec; :meth:`from_dict` inverts it."""
        out: dict[str, Any] = {
            "name": self.name,
            "links": [link.to_dict() for link in self.links],
            "packets": int(self.packets),
        }
        if self.coupling_db is not None:
            out["coupling_db"] = [list(row) for row in self.coupling_db]
        if self.delay_samples is not None:
            out["delay_samples"] = [list(row) for row in self.delay_samples]
        if self.description:
            out["description"] = self.description
        return out

    @classmethod
    def from_dict(cls, data: object, source: str | None = None) -> "NetworkSpec":
        """Rebuild and validate a network spec from :meth:`to_dict` output.

        ``source`` (e.g. a file path) prefixes error messages.  Jammer
        specs are deep-validated, so a bad field fails here, not
        mid-run.
        """
        prefix = f"{source}: " if source else ""
        try:
            if not isinstance(data, dict):
                raise NetworkError(f"network spec must be a mapping, got {type(data).__name__}")
            known = {
                "name", "description", "links", "coupling_db",
                "delay_samples", "packets",
            }
            unknown = set(data) - known
            if unknown:
                raise NetworkError(f"unknown network field(s): {sorted(unknown)}")
            if "name" not in data:
                raise NetworkError("name: field is required")
            raw_links = data.get("links")
            if not isinstance(raw_links, list) or not raw_links:
                raise NetworkError("links: must be a non-empty list of link specs")
            links = tuple(
                LinkSpec.from_dict(entry, path=f"links[{i}]")
                for i, entry in enumerate(raw_links)
            )
            kwargs: dict[str, Any] = {
                "name": data["name"],
                "links": links,
                "coupling_db": data.get("coupling_db"),
                "delay_samples": data.get("delay_samples"),
                "description": data.get("description", ""),
            }
            if "packets" in data:
                kwargs["packets"] = data["packets"]
            return cls(**kwargs).validate()
        except NetworkError as exc:
            if prefix:
                raise NetworkError(f"{prefix}{exc}") from None
            raise

    def save(self, path: str) -> str:
        """Write the network spec as pretty-printed JSON; returns the path."""
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "NetworkSpec":
        """Read and validate a network JSON file."""
        try:
            with open(path) as fh:
                data = json.load(fh)
        except OSError as exc:
            raise NetworkError(f"{path}: cannot read network file ({exc})") from None
        except ValueError as exc:
            raise NetworkError(f"{path}: invalid JSON ({exc})") from None
        return cls.from_dict(data, source=path)
